#include "reffil/util/rng.hpp"

#include <cmath>

#include "reffil/util/error.hpp"

namespace reffil::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  REFFIL_CHECK_MSG(n > 0, "uniform_index(0)");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  REFFIL_CHECK(lo <= hi);
  // The span must be computed in unsigned arithmetic: `hi - lo` as int64 is
  // UB for wide ranges (e.g. lo = INT64_MIN, hi > 0). Unsigned subtraction
  // wraps to the correct distance for every lo <= hi.
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  if (span == ~std::uint64_t{0}) {
    // Full 64-bit range: span + 1 would wrap to 0; every u64 is valid.
    return static_cast<std::int64_t>(next_u64());
  }
  // Offset lo in unsigned space too — adding to a negative int64 near the
  // type's edges would overflow; two's-complement wraparound is well defined
  // on uint64 and lands on the intended value.
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   uniform_index(span + 1));
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586;
  spare_normal_ = mag * std::sin(two_pi * u2);
  has_spare_normal_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::fork() {
  // Children are derived from the parent's seed and a fork counter so forks
  // are independent of how much the parent stream has been consumed.
  std::uint64_t sm = seed_ ^ (0xd1b54a32d192ed03ULL * ++fork_counter_);
  return Rng(splitmix64(sm));
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  REFFIL_CHECK_MSG(k <= n, "sample_without_replacement: k > n");
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  // Partial Fisher–Yates: first k positions are the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform_index(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  REFFIL_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    REFFIL_CHECK_MSG(w >= 0.0, "categorical: negative weight");
    total += w;
  }
  REFFIL_CHECK_MSG(total > 0.0, "categorical: all-zero weights");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace reffil::util
