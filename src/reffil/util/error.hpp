// Error types shared across the RefFiL library.
//
// Following the C++ Core Guidelines (E.2, E.14) we signal errors by throwing
// exceptions derived from a single library root so callers can catch either
// a precise category or everything the library can throw.
#pragma once

#include <stdexcept>
#include <string>

namespace reffil {

/// Root of the RefFiL exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Tensor shape / rank mismatch.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error("shape error: " + what) {}
};

/// Malformed bytes while decoding a serialized message.
class SerializationError : public Error {
 public:
  explicit SerializationError(const std::string& what)
      : Error("serialization error: " + what) {}
};

/// Invalid experiment / model configuration detected at construction time.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

/// Federated-protocol violation (e.g. client replies to the wrong round).
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error("protocol error: " + what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failed(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  throw Error(std::string("check failed: ") + expr + " at " + file + ":" +
              std::to_string(line) + (msg.empty() ? "" : " — " + msg));
}
}  // namespace detail

}  // namespace reffil

/// Precondition check that throws reffil::Error (active in all build types —
/// these guard library invariants, not debugging assertions).
#define REFFIL_CHECK(expr)                                                     \
  do {                                                                         \
    if (!(expr)) ::reffil::detail::throw_check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define REFFIL_CHECK_MSG(expr, msg)                                            \
  do {                                                                         \
    if (!(expr)) ::reffil::detail::throw_check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
