// Minimal leveled logger.
//
// The federated runtime logs round progress and the bench harness logs
// experiment milestones; everything funnels through here so verbosity can be
// controlled globally (REFFIL_LOG_LEVEL env var or set_level()).
#pragma once

#include <sstream>
#include <string>

namespace reffil::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Initialise level from the REFFIL_LOG_LEVEL environment variable
/// ("debug" | "info" | "warn" | "error" | "off"). Called lazily on first log.
void init_log_level_from_env();

/// Emit one log line (thread-safe).
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace reffil::util

#define REFFIL_LOG_DEBUG ::reffil::util::detail::LogLine(::reffil::util::LogLevel::kDebug)
#define REFFIL_LOG_INFO ::reffil::util::detail::LogLine(::reffil::util::LogLevel::kInfo)
#define REFFIL_LOG_WARN ::reffil::util::detail::LogLine(::reffil::util::LogLevel::kWarn)
#define REFFIL_LOG_ERROR ::reffil::util::detail::LogLine(::reffil::util::LogLevel::kError)
