#include "reffil/util/thread_pool.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "reffil/util/obs.hpp"
#include "reffil/util/prof.hpp"

namespace reffil::util {

namespace {

// Set while the current thread executes a pool task or a parallel_for chunk.
// This is what makes the pool reentrant: a nested parallel_for sees the flag
// and runs inline instead of enqueueing work it would then block on.
thread_local bool tls_in_pool_task = false;

// Records the submit→start wait and current queue depth when a worker picks
// up a task. The histogram feeds p50/p95/p99 in reports; the profiler gets
// the same signals as counter/instant events on the worker's timeline.
void note_dequeue(std::chrono::steady_clock::time_point enqueued,
                  std::size_t depth_after_pop) {
  if (obs::metrics_enabled()) {
    const double wait =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      enqueued)
            .count();
    static obs::Histogram& wait_hist =
        obs::histogram("pool.task_wait_seconds");
    static obs::Gauge& depth_gauge = obs::gauge("pool.queue_depth");
    wait_hist.observe(wait);
    depth_gauge.set(static_cast<double>(depth_after_pop));
    if (obs::prof::enabled()) {
      obs::prof::emit_counter("pool.queue_depth", depth_after_pop);
      obs::prof::emit_instant(
          "pool.task_wait_us",
          static_cast<std::uint64_t>(wait * 1e6));
    }
  }
}

}  // namespace

bool ThreadPool::in_pool_task() { return tls_in_pool_task; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_in_pool_task = true;
  const std::string worker_name = "pool-worker-" + std::to_string(index);
  obs::prof::set_thread_name(worker_name.c_str());
  obs::Gauge& busy_gauge = obs::gauge(worker_name + ".busy_s");
  double busy_seconds = 0.0;
  for (;;) {
    QueuedTask task;
    std::size_t depth_after_pop = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
      depth_after_pop = queue_.size();
    }
    note_dequeue(task.enqueued, depth_after_pop);
    const auto t0 = std::chrono::steady_clock::now();
    {
      obs::prof::Span span("pool.task");
      task.fn();
    }
    busy_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    busy_gauge.set(busy_seconds);
  }
}

void ThreadPool::run_chunks(ForkJoin& fj) {
  // The body runs "inside a pool task" even when this is the submitting
  // thread helping out — any parallel_for it issues must inline.
  const bool was_in_task = tls_in_pool_task;
  tls_in_pool_task = true;
  for (;;) {
    const std::size_t c = fj.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= fj.chunks) break;
    const std::size_t lo = c * fj.n / fj.chunks;
    const std::size_t hi = (c + 1) * fj.n / fj.chunks;
    try {
      obs::prof::Span span("pool.chunk", 0, fj.corr);
      for (std::size_t i = lo; i < hi; ++i) (*fj.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(fj.m);
      if (!fj.error) fj.error = std::current_exception();
    }
    if (fj.done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        fj.chunks) {
      // Empty critical section pairs with the caller's predicate check so
      // the final notify cannot be lost.
      std::lock_guard<std::mutex> lock(fj.m);
      fj.done_cv.notify_all();
    }
  }
  tls_in_pool_task = was_in_task;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Inline when there is nothing to fan out to (n == 1, no extra workers) or
  // when we are already inside a pool task: the nested range becomes part of
  // the caller's chunk, so nesting can never block a worker on itself.
  if (n == 1 || workers_.size() <= 1 || tls_in_pool_task) {
    // Still the pool layer, just degenerate: a span here keeps profiles from
    // single-core hosts (or nested calls) showing where fan-out collapsed.
    obs::prof::Span span("pool.inline");
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto fj = std::make_shared<ForkJoin>();
  fj->n = n;
  fj->chunks = std::min(n, workers_.size() + 1);  // +1: the caller helps
  fj->body = &body;
  // One correlation id per fork/join: every pool.chunk span it produces —
  // on workers and on the helping caller — carries it, so an analyzer can
  // group the scatter back into the parallel_for that issued it.
  if (obs::prof::enabled()) fj->corr = obs::prof::next_correlation_id();

  const std::size_t helpers = fj->chunks - 1;
  const auto enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool: parallel_for after stop");
    }
    for (std::size_t i = 0; i < helpers; ++i) {
      queue_.push(QueuedTask{[this, fj] { run_chunks(*fj); }, enqueued});
    }
  }
  cv_.notify_all();

  run_chunks(*fj);  // the caller claims chunks alongside the workers

  std::unique_lock<std::mutex> lock(fj->m);
  fj->done_cv.wait(lock, [&] {
    return fj->done_chunks.load(std::memory_order_acquire) == fj->chunks;
  });
  if (fj->error) std::rethrow_exception(fj->error);
}

ThreadPool& global_thread_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace reffil::util
