// Observability: a process-wide metrics registry and a structured trace.
//
// Two complementary views of a run feed every perf/communication claim the
// repo makes:
//
//  * Metrics — named counters / gauges / histograms with relaxed-atomic
//    updates, aggregated in place. Handles returned by the registry are
//    stable for the process lifetime, so hot paths look a metric up once and
//    then pay one atomic op per update. `ScopedTimer` records a wall-time
//    histogram sample on scope exit.
//  * Trace — a JSONL event stream (one self-describing object per line)
//    written to the path in the REFFIL_TRACE environment variable (or set
//    programmatically). The federated runner emits broadcast / client_train /
//    dropout / aggregate / eval / run_end events; `reffil_report` and the CI
//    reconciliation check consume them. When no sink is configured,
//    trace_enabled() is a single relaxed atomic load and no event is built.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace reffil::obs {

// ---- metrics ---------------------------------------------------------------

/// Monotonic counter (relaxed atomic adds; exact totals on read).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins double value (stored as bit-cast u64 so plain C++20
/// atomics suffice on every platform).
class Gauge {
 public:
  void set(double v);
  double value() const;

 private:
  std::atomic<std::uint64_t> bits_{0};
};

struct HistogramStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;
  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

/// Moments plus the log2 bucket counts, as one coherent copy. quantile()
/// estimates pXX from the buckets: a sample in bucket i lies in
/// [2^(i-bias-1), 2^(i-bias)), so the estimator walks buckets to the target
/// rank and interpolates linearly inside the bucket it lands in, clamped to
/// the exact observed [min, max]. Error is bounded by the bucket width
/// (a factor of 2), which is plenty for p50/p95/p99 timing tables.
///
/// Interpolation contract, including the edges:
///   * count == 0     -> 0.0 for every q (no samples, no estimate);
///   * q <= 0.0       -> stats.min exactly (no bucket interpolation);
///   * q >= 1.0       -> stats.max exactly;
///   * 0 < q < 1      -> the 0-based fractional rank q*(count-1) is located
///     in the bucket walk; within a bucket holding n samples the estimate
///     interpolates linearly by rank over the bucket's [lo, hi) span —
///     a single-sample bucket (n == 1) uses the bucket midpoint — and the
///     result is clamped to [stats.min, stats.max], which also repairs the
///     zero/non-finite catch-all bucket whose nominal span is meaningless.
struct HistogramSnapshot {
  static constexpr int kBuckets = 64;
  HistogramStats stats;
  std::array<std::uint64_t, kBuckets> buckets{};

  double quantile(double q) const;
};

/// Streaming histogram: count / sum / min / max plus log2-bucketed counts
/// (bucket i counts samples with exponent i - kBucketBias, i.e. a ~[2^-32,
/// 2^31] dynamic range — plenty for seconds or bytes).
class Histogram {
 public:
  static constexpr int kBuckets = HistogramSnapshot::kBuckets;
  static constexpr int kBucketBias = 32;

  void observe(double v);
  HistogramStats stats() const;
  /// stats() plus the bucket counts (the Registry::Snapshot payload).
  HistogramSnapshot snapshot() const;
  std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  ///< CAS-accumulated double
  std::atomic<std::uint64_t> min_bits_;     ///< init in ctor
  std::atomic<std::uint64_t> max_bits_;
  std::atomic<std::uint64_t> buckets_[kBuckets]{};

 public:
  Histogram();
};

/// Process-wide name -> metric map. Registration takes a mutex; returned
/// references never move or die, so callers cache them across calls.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
  };
  Snapshot snapshot() const;

  /// Zero every registered metric (tests / bench isolation).
  void reset();

 private:
  Registry() = default;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Global metrics switch. Default on (updates are a relaxed atomic op); the
/// helpers below and ScopedTimer become no-ops — including the clock reads —
/// when disabled.
bool metrics_enabled();
void set_metrics_enabled(bool enabled);

/// Convenience shorthands over Registry::instance().
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);
void count(std::string_view name, std::uint64_t n = 1);

/// Records elapsed wall seconds into a histogram when the scope closes (or
/// at the explicit stop()). A null histogram or disabled metrics makes the
/// timer free: no clock read, no record.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* sink);
  explicit ScopedTimer(std::string_view name) : ScopedTimer(&histogram(name)) {}
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Record once and return elapsed seconds (0 when disarmed).
  double stop();

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_;
  bool armed_;
};

// ---- trace -----------------------------------------------------------------

/// One JSONL trace line under construction. Fields render in insertion
/// order; string values are JSON-escaped. The first field is always
/// "event": <type>.
class TraceEvent {
 public:
  explicit TraceEvent(std::string_view type);

  TraceEvent& field(std::string_view key, std::uint64_t v);
  TraceEvent& field(std::string_view key, std::int64_t v);
  TraceEvent& field(std::string_view key, std::uint32_t v) {
    return field(key, static_cast<std::uint64_t>(v));
  }
  TraceEvent& field(std::string_view key, int v) {
    return field(key, static_cast<std::int64_t>(v));
  }
  TraceEvent& field(std::string_view key, double v);
  TraceEvent& field(std::string_view key, std::string_view v);
  TraceEvent& field(std::string_view key, const char* v) {
    return field(key, std::string_view(v));
  }

  /// The finished JSON object (idempotent).
  std::string json() const;

 private:
  std::string body_;  ///< "{...fields" without the closing brace
};

/// True when a trace sink is open. First call initialises the sink from the
/// REFFIL_TRACE environment variable; afterwards this is one relaxed load.
bool trace_enabled();

/// Point the trace at `path` (append is false: truncates). An empty path
/// closes the sink and disables tracing. Overrides REFFIL_TRACE.
void set_trace_path(const std::string& path);

/// Append one event line (thread-safe; no-op when tracing is disabled).
void trace(const TraceEvent& event);

/// Flush buffered trace output to disk.
void flush_trace();

/// Flush every observability sink: the JSONL trace stream and, when armed,
/// the op-level profiler's Chrome trace (prof.hpp). Registered with
/// std::atexit at sink init and called from tool error paths, so traces
/// survive early exits and thrown exceptions.
void flush_all();

/// Install crash-safe flush handlers (idempotent; installed automatically
/// when a trace sink opens):
///   * std::set_terminate -> flush_all(), then the previous handler;
///   * SIGINT / SIGTERM   -> best-effort trace flush (try-lock only — the
///     profiler's locking flush is skipped because the signal may have
///     interrupted a thread holding its mutex), then the signal is re-raised
///     with the default disposition so the exit status still reports it.
/// A run killed mid-round therefore leaves a parseable JSONL trace of every
/// event recorded before the kill.
void install_crash_flush_handlers();

/// Append `s` to `out` with strict JSON string escaping: quotes/backslash,
/// control characters as \uXXXX, valid UTF-8 passed through, and invalid
/// UTF-8 bytes replaced with U+FFFD so the output always parses.
void json_escape(std::string& out, std::string_view s);

}  // namespace reffil::obs
