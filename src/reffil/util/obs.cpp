#include "reffil/util/obs.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace reffil::obs {

// ---- Gauge -----------------------------------------------------------------

void Gauge::set(double v) {
  bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
}

double Gauge::value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

// ---- Histogram -------------------------------------------------------------

namespace {

// CAS-accumulate / CAS-min / CAS-max over doubles stored as u64 bits.
template <typename Better>
void atomic_update_double(std::atomic<std::uint64_t>& bits, double v,
                          const Better& better) {
  std::uint64_t observed = bits.load(std::memory_order_relaxed);
  for (;;) {
    const double current = std::bit_cast<double>(observed);
    const double next = better(current, v);
    if (next == current) return;
    if (bits.compare_exchange_weak(observed, std::bit_cast<std::uint64_t>(next),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

Histogram::Histogram()
    : min_bits_(std::bit_cast<std::uint64_t>(
          std::numeric_limits<double>::infinity())),
      max_bits_(std::bit_cast<std::uint64_t>(
          -std::numeric_limits<double>::infinity())) {}

void Histogram::observe(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_update_double(sum_bits_, v,
                       [](double cur, double x) { return cur + x; });
  atomic_update_double(min_bits_, v,
                       [](double cur, double x) { return x < cur ? x : cur; });
  atomic_update_double(max_bits_, v,
                       [](double cur, double x) { return x > cur ? x : cur; });
  int exponent = 0;
  if (v > 0.0 && std::isfinite(v)) {
    (void)std::frexp(v, &exponent);
  }
  const int bucket =
      std::min(kBuckets - 1, std::max(0, exponent + kBucketBias));
  buckets_[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
}

HistogramStats Histogram::stats() const {
  HistogramStats s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  if (s.count != 0) {
    s.min = std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
    s.max = std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
  }
  return s;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
  min_bits_.store(std::bit_cast<std::uint64_t>(
                      std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
  max_bits_.store(std::bit_cast<std::uint64_t>(
                      -std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

// ---- Registry --------------------------------------------------------------

Registry& Registry::instance() {
  static Registry* registry = new Registry();  // never destroyed: metric
  return *registry;                            // handles outlive static dtors
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h->stats();
  return snap;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->set(0.0);
  for (auto& [name, h] : histograms_) h->reset();
}

namespace {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}

Gauge& gauge(std::string_view name) { return Registry::instance().gauge(name); }

Histogram& histogram(std::string_view name) {
  return Registry::instance().histogram(name);
}

void count(std::string_view name, std::uint64_t n) {
  if (!metrics_enabled()) return;
  Registry::instance().counter(name).add(n);
}

ScopedTimer::ScopedTimer(Histogram* sink)
    : sink_(sink), armed_(sink != nullptr && metrics_enabled()) {
  if (armed_) start_ = std::chrono::steady_clock::now();
}

double ScopedTimer::stop() {
  if (!armed_) return 0.0;
  armed_ = false;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  sink_->observe(seconds);
  return seconds;
}

// ---- trace -----------------------------------------------------------------

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_key(std::string& out, std::string_view key) {
  out += ",\"";
  append_json_escaped(out, key);
  out += "\":";
}

struct TraceSink {
  std::mutex mutex;
  std::ofstream stream;  // guarded by mutex
};

TraceSink& trace_sink() {
  static TraceSink* sink = new TraceSink();  // never destroyed; see Registry
  return *sink;
}

std::atomic<bool> g_trace_enabled{false};
std::once_flag g_trace_env_once;

void init_trace_from_env() {
  const char* path = std::getenv("REFFIL_TRACE");
  if (path == nullptr || path[0] == '\0') return;
  TraceSink& sink = trace_sink();
  std::lock_guard lock(sink.mutex);
  sink.stream.open(path, std::ios::trunc);
  g_trace_enabled.store(sink.stream.is_open(), std::memory_order_relaxed);
}

}  // namespace

TraceEvent::TraceEvent(std::string_view type) {
  body_ = "{\"event\":\"";
  append_json_escaped(body_, type);
  body_ += '"';
}

TraceEvent& TraceEvent::field(std::string_view key, std::uint64_t v) {
  append_key(body_, key);
  body_ += std::to_string(v);
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, std::int64_t v) {
  append_key(body_, key);
  body_ += std::to_string(v);
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, double v) {
  append_key(body_, key);
  char buf[32];
  // %.9g is compact, round-trips floats, and never produces JSON-invalid
  // inf/nan (clamped below).
  if (!std::isfinite(v)) v = 0.0;
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  body_ += buf;
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, std::string_view v) {
  append_key(body_, key);
  body_ += '"';
  append_json_escaped(body_, v);
  body_ += '"';
  return *this;
}

std::string TraceEvent::json() const { return body_ + "}"; }

bool trace_enabled() {
  std::call_once(g_trace_env_once, init_trace_from_env);
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_trace_path(const std::string& path) {
  std::call_once(g_trace_env_once, [] {});  // claim env init; explicit wins
  TraceSink& sink = trace_sink();
  std::lock_guard lock(sink.mutex);
  if (sink.stream.is_open()) sink.stream.close();
  if (path.empty()) {
    g_trace_enabled.store(false, std::memory_order_relaxed);
    return;
  }
  sink.stream.clear();
  sink.stream.open(path, std::ios::trunc);
  g_trace_enabled.store(sink.stream.is_open(), std::memory_order_relaxed);
}

void trace(const TraceEvent& event) {
  if (!trace_enabled()) return;
  TraceSink& sink = trace_sink();
  std::lock_guard lock(sink.mutex);
  if (!sink.stream.is_open()) return;
  sink.stream << event.json() << '\n';
}

void flush_trace() {
  if (!trace_enabled()) return;
  TraceSink& sink = trace_sink();
  std::lock_guard lock(sink.mutex);
  if (sink.stream.is_open()) sink.stream.flush();
}

}  // namespace reffil::obs
