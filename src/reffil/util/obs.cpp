#include "reffil/util/obs.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>

#include "reffil/util/prof.hpp"

namespace reffil::obs {

// ---- Gauge -----------------------------------------------------------------

void Gauge::set(double v) {
  bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
}

double Gauge::value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

// ---- Histogram -------------------------------------------------------------

namespace {

// CAS-accumulate / CAS-min / CAS-max over doubles stored as u64 bits.
template <typename Better>
void atomic_update_double(std::atomic<std::uint64_t>& bits, double v,
                          const Better& better) {
  std::uint64_t observed = bits.load(std::memory_order_relaxed);
  for (;;) {
    const double current = std::bit_cast<double>(observed);
    const double next = better(current, v);
    if (next == current) return;
    if (bits.compare_exchange_weak(observed, std::bit_cast<std::uint64_t>(next),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

Histogram::Histogram()
    : min_bits_(std::bit_cast<std::uint64_t>(
          std::numeric_limits<double>::infinity())),
      max_bits_(std::bit_cast<std::uint64_t>(
          -std::numeric_limits<double>::infinity())) {}

void Histogram::observe(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_update_double(sum_bits_, v,
                       [](double cur, double x) { return cur + x; });
  atomic_update_double(min_bits_, v,
                       [](double cur, double x) { return x < cur ? x : cur; });
  atomic_update_double(max_bits_, v,
                       [](double cur, double x) { return x > cur ? x : cur; });
  int exponent = 0;
  if (v > 0.0 && std::isfinite(v)) {
    (void)std::frexp(v, &exponent);
  }
  const int bucket =
      std::min(kBuckets - 1, std::max(0, exponent + kBucketBias));
  buckets_[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
}

HistogramStats Histogram::stats() const {
  HistogramStats s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  if (s.count != 0) {
    s.min = std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
    s.max = std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
  }
  return s;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.stats = stats();
  for (int i = 0; i < kBuckets; ++i) {
    snap.buckets[static_cast<std::size_t>(i)] = bucket(i);
  }
  return snap;
}

double HistogramSnapshot::quantile(double q) const {
  if (stats.count == 0) return 0.0;
  // The extreme quantiles are exact: min and max are tracked directly, so
  // q<=0 / q>=1 need no bucket walk (and NaN thresholds fall through to the
  // interpolation path, where clamp() keeps the result in [min, max]).
  if (q <= 0.0) return stats.min;
  if (q >= 1.0) return stats.max;
  // 0-based fractional rank of the target sample in sorted order.
  const double rank = q * static_cast<double>(stats.count - 1);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = buckets[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    if (rank < static_cast<double>(seen + n)) {
      // Samples in bucket b lie in [2^(b-bias-1), 2^(b-bias)); interpolate
      // by rank position inside the bucket, then clamp to the exact
      // observed extrema (which also repairs the b==bias zero/nonfinite
      // catch-all bucket).
      const double lo = std::ldexp(1.0, b - Histogram::kBucketBias - 1);
      const double hi = std::ldexp(1.0, b - Histogram::kBucketBias);
      const double frac =
          n == 1 ? 0.5
                 : (rank - static_cast<double>(seen)) / static_cast<double>(n - 1);
      return std::clamp(lo + (hi - lo) * frac, stats.min, stats.max);
    }
    seen += n;
  }
  return stats.max;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
  min_bits_.store(std::bit_cast<std::uint64_t>(
                      std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
  max_bits_.store(std::bit_cast<std::uint64_t>(
                      -std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

// ---- Registry --------------------------------------------------------------

Registry& Registry::instance() {
  static Registry* registry = new Registry();  // never destroyed: metric
  return *registry;                            // handles outlive static dtors
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->snapshot();
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->set(0.0);
  for (auto& [name, h] : histograms_) h->reset();
}

namespace {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}

Gauge& gauge(std::string_view name) { return Registry::instance().gauge(name); }

Histogram& histogram(std::string_view name) {
  return Registry::instance().histogram(name);
}

void count(std::string_view name, std::uint64_t n) {
  if (!metrics_enabled()) return;
  Registry::instance().counter(name).add(n);
}

ScopedTimer::ScopedTimer(Histogram* sink)
    : sink_(sink), armed_(sink != nullptr && metrics_enabled()) {
  if (armed_) start_ = std::chrono::steady_clock::now();
}

double ScopedTimer::stop() {
  if (!armed_) return 0.0;
  armed_ = false;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  sink_->observe(seconds);
  return seconds;
}

// ---- trace -----------------------------------------------------------------

namespace {

/// Length of the (potential) UTF-8 sequence starting with lead byte `c`;
/// 0 for bytes that can never lead a sequence (continuations, 0xFE/0xFF).
std::size_t utf8_seq_len(unsigned char c) {
  if (c < 0x80) return 1;
  if (c >= 0xF0 && c <= 0xF4) return 4;
  if (c >= 0xE0 && c < 0xF0) return 3;
  if (c >= 0xC2 && c < 0xE0) return 2;  // C0/C1 are always overlong
  return 0;
}

/// Validate the multi-byte sequence at s[i..i+len): continuation bytes,
/// no overlong encodings, no surrogates, <= U+10FFFF.
bool utf8_seq_valid(std::string_view s, std::size_t i, std::size_t len) {
  if (i + len > s.size()) return false;
  std::uint32_t cp = static_cast<unsigned char>(s[i]) &
                     static_cast<unsigned char>(0xFF >> (len + 1));
  for (std::size_t j = 1; j < len; ++j) {
    const unsigned char c = static_cast<unsigned char>(s[i + j]);
    if ((c & 0xC0) != 0x80) return false;
    cp = (cp << 6) | (c & 0x3F);
  }
  if (len == 2) return cp >= 0x80;
  if (len == 3) return cp >= 0x800 && (cp < 0xD800 || cp > 0xDFFF);
  return cp >= 0x10000 && cp <= 0x10FFFF;
}

void append_key(std::string& out, std::string_view key) {
  out += ",\"";
  json_escape(out, key);
  out += "\":";
}

struct TraceSink {
  std::mutex mutex;
  std::ofstream stream;  // guarded by mutex
};

TraceSink& trace_sink() {
  static TraceSink* sink = new TraceSink();  // never destroyed; see Registry
  return *sink;
}

std::atomic<bool> g_trace_enabled{false};
std::once_flag g_trace_env_once;

void init_trace_from_env() {
  const char* path = std::getenv("REFFIL_TRACE");
  if (path == nullptr || path[0] == '\0') return;
  TraceSink& sink = trace_sink();
  std::lock_guard lock(sink.mutex);
  sink.stream.open(path, std::ios::trunc);
  g_trace_enabled.store(sink.stream.is_open(), std::memory_order_relaxed);
  if (sink.stream.is_open()) install_crash_flush_handlers();
}

}  // namespace

void json_escape(std::string& out, std::string_view s) {
  for (std::size_t i = 0; i < s.size();) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (c == '"') {
      out += "\\\"";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\r') {
      out += "\\r";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c < 0x20 || c == 0x7F) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else if (c < 0x80) {
      out += static_cast<char>(c);
    } else {
      const std::size_t len = utf8_seq_len(c);
      if (len >= 2 && utf8_seq_valid(s, i, len)) {
        out.append(s.substr(i, len));
        i += len;
        continue;
      }
      out += "\\ufffd";  // invalid byte: replacement character, not raw junk
    }
    ++i;
  }
}

void flush_all() {
  flush_trace();
  prof::flush();
}

namespace {

std::atomic<bool> g_crash_handlers_installed{false};
std::terminate_handler g_previous_terminate = nullptr;

/// Best-effort flush for async-signal context: try-lock only, no allocation,
/// no profiler (its flush takes mutexes the interrupted thread may hold).
/// Flushing an ofstream here is formally outside the async-signal-safe set,
/// but the alternative is losing the tail of every killed run's trace; the
/// try_lock guarantees we at least never deadlock the dying process.
void signal_flush(int signo) {
  TraceSink& sink = trace_sink();
  if (sink.mutex.try_lock()) {
    if (sink.stream.is_open()) sink.stream.flush();
    sink.mutex.unlock();
  }
  std::signal(signo, SIG_DFL);
  std::raise(signo);
}

}  // namespace

void install_crash_flush_handlers() {
  bool expected = false;
  if (!g_crash_handlers_installed.compare_exchange_strong(expected, true)) {
    return;
  }
  g_previous_terminate = std::set_terminate([] {
    flush_all();  // terminate runs on the throwing thread: full flush is safe
    if (g_previous_terminate != nullptr) {
      g_previous_terminate();
    }
    std::abort();
  });
  // Leave externally-ignored signals ignored (nohup et al.); otherwise hook.
  for (const int signo : {SIGINT, SIGTERM}) {
    if (std::signal(signo, signal_flush) == SIG_IGN) {
      std::signal(signo, SIG_IGN);
    }
  }
}

TraceEvent::TraceEvent(std::string_view type) {
  body_ = "{\"event\":\"";
  json_escape(body_, type);
  body_ += '"';
}

TraceEvent& TraceEvent::field(std::string_view key, std::uint64_t v) {
  append_key(body_, key);
  body_ += std::to_string(v);
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, std::int64_t v) {
  append_key(body_, key);
  body_ += std::to_string(v);
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, double v) {
  append_key(body_, key);
  char buf[32];
  // %.9g is compact, round-trips floats, and never produces JSON-invalid
  // inf/nan (clamped below).
  if (!std::isfinite(v)) v = 0.0;
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  body_ += buf;
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, std::string_view v) {
  append_key(body_, key);
  body_ += '"';
  json_escape(body_, v);
  body_ += '"';
  return *this;
}

std::string TraceEvent::json() const { return body_ + "}"; }

bool trace_enabled() {
  std::call_once(g_trace_env_once, init_trace_from_env);
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_trace_path(const std::string& path) {
  std::call_once(g_trace_env_once, [] {});  // claim env init; explicit wins
  TraceSink& sink = trace_sink();
  std::lock_guard lock(sink.mutex);
  if (sink.stream.is_open()) sink.stream.close();
  if (path.empty()) {
    g_trace_enabled.store(false, std::memory_order_relaxed);
    return;
  }
  sink.stream.clear();
  sink.stream.open(path, std::ios::trunc);
  g_trace_enabled.store(sink.stream.is_open(), std::memory_order_relaxed);
  if (sink.stream.is_open()) install_crash_flush_handlers();
}

void trace(const TraceEvent& event) {
  if (!trace_enabled()) return;
  TraceSink& sink = trace_sink();
  std::lock_guard lock(sink.mutex);
  if (!sink.stream.is_open()) return;
  sink.stream << event.json() << '\n';
}

void flush_trace() {
  if (!trace_enabled()) return;
  TraceSink& sink = trace_sink();
  std::lock_guard lock(sink.mutex);
  if (sink.stream.is_open()) sink.stream.flush();
}

}  // namespace reffil::obs
