// Deterministic random number generation.
//
// All stochastic behaviour in the library (weight init, data synthesis,
// client sampling, shuffling) flows through Rng so experiments are exactly
// reproducible from a single 64-bit seed. The generator is xoshiro256**
// seeded via SplitMix64, which is both fast and statistically strong enough
// for simulation workloads.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace reffil::util {

/// SplitMix64 step — used to expand a user seed into xoshiro state and to
/// derive independent child seeds.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic pseudo-random generator (xoshiro256**).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached spare value).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Bernoulli draw.
  bool bernoulli(double p);

  /// Derive an independent child generator; successive calls give distinct
  /// streams. Useful for giving each client / dataset its own stream.
  Rng fork();

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Draw from a categorical distribution given non-negative weights.
  std::size_t categorical(const std::vector<double>& weights);

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
  std::uint64_t fork_counter_ = 0;
  std::uint64_t seed_ = 0;
};

}  // namespace reffil::util
