// Fixed-size thread pool used to run federated clients in parallel.
//
// Semantics: submit() enqueues a task and returns a std::future; the pool
// drains the queue with `threads` workers. parallel_for() is a convenience
// that blocks until every index has been processed and rethrows the first
// task exception on the calling thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace reffil::util {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a nullary callable; result/exception delivered via the future.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Run body(i) for i in [0, n); blocks until all complete. Rethrows the
  /// first exception thrown by any body invocation.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide pool shared by the federated runtime (lazily constructed).
ThreadPool& global_thread_pool();

}  // namespace reffil::util
