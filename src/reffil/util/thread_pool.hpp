// Reentrant, work-helping thread pool used to run federated clients in
// parallel and to back the parallel tensor kernels underneath them.
//
// Semantics: submit() enqueues a task and returns a std::future; the pool
// drains the queue with `threads` workers. parallel_for() chunks the index
// range into at most (workers + 1) contiguous chunks — one per worker plus
// one for the caller — and the calling thread *helps* execute chunks instead
// of blocking, so the pool's workers are never parked behind a waiting
// caller. A parallel_for issued from inside a pool task (i.e. a nested
// parallel_for) runs inline on the caller's chunk, which makes nesting
// deadlock-free by construction: no task ever blocks on work that only an
// occupied worker could run.
//
// Rules for callers:
//  * parallel_for may be nested to any depth and called from any thread.
//  * Tasks given to submit() must not block on futures of other tasks in the
//    same pool; use parallel_for for fork/join parallelism instead.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace reffil::util {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// True while the current thread is executing a pool task or a
  /// parallel_for chunk (of any pool). Nested parallel_for calls observe
  /// this and run inline instead of re-entering the queue.
  static bool in_pool_task();

  /// Enqueue a nullary callable; result/exception delivered via the future.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.push(QueuedTask{[task] { (*task)(); },
                             std::chrono::steady_clock::now()});
    }
    cv_.notify_one();
    return future;
  }

  /// Run body(i) for i in [0, n); blocks until all complete. Rethrows the
  /// first observed exception thrown by any body invocation. The calling
  /// thread executes chunks itself (it never idles), and nested calls from
  /// inside a pool task execute the whole range inline on the caller.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  /// Queue entry: the callable plus its enqueue time, so the dequeuing
  /// worker can record the submit→start wait.
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Shared fork/join state for one parallel_for call. Held by shared_ptr so
  /// a straggler helper task that wakes after every chunk has been claimed
  /// can still touch the counters safely.
  struct ForkJoin {
    std::size_t n = 0;
    std::size_t chunks = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::uint64_t corr = 0;  ///< profiler correlation id (0 when disabled)
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<std::size_t> done_chunks{0};
    std::mutex m;
    std::condition_variable done_cv;
    std::exception_ptr error;  // guarded by m
  };

  void run_chunks(ForkJoin& fj);
  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::queue<QueuedTask> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide pool shared by the federated runtime and the parallel tensor
/// kernels (lazily constructed).
ThreadPool& global_thread_pool();

}  // namespace reffil::util
