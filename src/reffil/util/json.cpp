#include "reffil/util/json.hpp"

#include <cmath>
#include <cstdlib>

namespace reffil::util::json {

bool Value::as_bool() const {
  if (type_ != Type::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) throw std::runtime_error("json: not a number");
  return number_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) throw std::runtime_error("json: not a string");
  return string_;
}

const Array& Value::as_array() const {
  if (type_ != Type::kArray) throw std::runtime_error("json: not an array");
  return *array_;
}

const Object& Value::as_object() const {
  if (type_ != Type::kObject) throw std::runtime_error("json: not an object");
  return *object_;
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_->find(std::string(key));
  return it == object_->end() ? nullptr : &it->second;
}

double Value::number_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::string Value::string_or(std::string_view key, std::string fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string()
                                          : std::move(fallback);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) { throw ParseError(what, pos_); }

  bool eof() const { return pos_ >= text_.size(); }
  unsigned char peek() const { return static_cast<unsigned char>(text_[pos_]); }

  void skip_ws() {
    while (!eof()) {
      const unsigned char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (eof() || text_[pos_] != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    if (eof()) fail("unexpected end of input");
    Value v = [&] {
      switch (peek()) {
        case '{': return parse_object();
        case '[': return parse_array();
        case '"': return Value(parse_string());
        case 't':
          if (!consume_literal("true")) fail("bad literal");
          return Value(true);
        case 'f':
          if (!consume_literal("false")) fail("bad literal");
          return Value(false);
        case 'n':
          if (!consume_literal("null")) fail("bad literal");
          return Value();
        default: return parse_number();
      }
    }();
    --depth_;
    return v;
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      obj[std::move(key)] = parse_value();
      skip_ws();
      if (eof()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(obj));
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    for (;;) {
      skip_ws();
      arr.push_back(parse_value());
      skip_ws();
      if (eof()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(arr));
    }
  }

  // RFC 8259 §7: raw control characters are forbidden inside strings, every
  // escape must be one of the eight shorthands or \uXXXX, and surrogate
  // halves must pair. The decoded string is re-encoded as UTF-8.
  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string");
      const unsigned char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c == '\\') {
        if (eof()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': append_unicode_escape(out); break;
          default: fail("bad escape");
        }
      } else if (c < 0x20) {
        fail("raw control character in string");
      } else if (c < 0x80) {
        out += static_cast<char>(c);
      } else {
        // Validate the multi-byte sequence; the writer contract is that
        // only well-formed UTF-8 reaches a trace file.
        --pos_;
        append_utf8_sequence(out);
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("bad \\u escape");
      }
    }
    return v;
  }

  void append_unicode_escape(std::string& out) {
    std::uint32_t cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need the pair
      if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
          text_[pos_ + 1] == 'u') {
        pos_ += 2;
        const std::uint32_t lo = parse_hex4();
        if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired surrogate");
        cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
      } else {
        fail("unpaired surrogate");
      }
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    append_codepoint(out, cp);
  }

  static void append_codepoint(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  void append_utf8_sequence(std::string& out) {
    const unsigned char lead = peek();
    std::size_t len = 0;
    std::uint32_t cp = 0;
    if (lead >= 0xC2 && lead <= 0xDF) {
      len = 2;
      cp = lead & 0x1Fu;
    } else if (lead >= 0xE0 && lead <= 0xEF) {
      len = 3;
      cp = lead & 0x0Fu;
    } else if (lead >= 0xF0 && lead <= 0xF4) {
      len = 4;
      cp = lead & 0x07u;
    } else {
      fail("invalid UTF-8 lead byte");
    }
    if (pos_ + len > text_.size()) fail("truncated UTF-8 sequence");
    for (std::size_t i = 1; i < len; ++i) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_ + i]);
      if ((c & 0xC0) != 0x80) fail("invalid UTF-8 continuation");
      cp = (cp << 6) | (c & 0x3Fu);
    }
    const bool overlong = (len == 2 && cp < 0x80) ||
                          (len == 3 && cp < 0x800) ||
                          (len == 4 && cp < 0x10000);
    if (overlong || cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) {
      fail("invalid UTF-8 codepoint");
    }
    out.append(text_.substr(pos_, len));
    pos_ += len;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || peek() < '0' || peek() > '9') fail("bad number");
    if (peek() == '0') {
      ++pos_;  // leading zeros are forbidden: 0 must stand alone
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9') fail("bad fraction");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9') fail("bad exponent");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double v = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(v)) fail("number out of range");
    return Value(v);
  }

  static constexpr int kMaxDepth = 256;  // bound recursion on hostile input

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

}  // namespace reffil::util::json
