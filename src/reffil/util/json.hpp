// Minimal strict JSON parser (RFC 8259).
//
// Exists for two consumers: tools/reffil_prof, which ingests the profiler's
// Chrome trace-event output, and the escaping fuzz tests, which need an
// *unforgiving* validator — any control character, bad escape, trailing
// comma, or invalid UTF-8 that the writer lets through must fail here rather
// than round-trip silently. Strictness is therefore a feature: no comments,
// no NaN/Infinity, no lone surrogates.
//
// The value model is deliberately small: every number is a double (the trace
// format never needs 64-bit-exact integers bigger than 2^53).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace reffil::util::json {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at byte " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/// A parsed JSON value. Accessors throw std::runtime_error on a type
/// mismatch; use is_*() / find() for optional access.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  explicit Value(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Value(double d) : type_(Type::kNumber), number_(d) {}
  explicit Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  explicit Value(Array a)
      : type_(Type::kArray), array_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : type_(Type::kObject), object_(std::make_shared<Object>(std::move(o))) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  /// find() + number coercion with a default (trace fields are optional).
  double number_or(std::string_view key, double fallback) const;
  /// find() + string with a default.
  std::string string_or(std::string_view key, std::string fallback) const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;    // shared: Values are copied by std::map
  std::shared_ptr<Object> object_;
};

/// Parse one JSON document; the whole input must be consumed (trailing
/// whitespace allowed). Throws ParseError on any violation.
Value parse(std::string_view text);

}  // namespace reffil::util::json
