#include "reffil/tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "reffil/tensor/kernels_dispatch.hpp"
#include "reffil/tensor/parallel.hpp"
#include "reffil/util/prof.hpp"

namespace reffil::tensor {

namespace P = parallel;

namespace {

/// Elementwise driver: runs fn(lo, hi) over [0, n), fanning out on the
/// global pool above the elementwise threshold. Blocks are disjoint, so the
/// result is bitwise identical to the serial loop either way. Templated so
/// the (overwhelmingly common) serial path never materializes a
/// std::function — graph replay counts on the serial path being
/// allocation-free.
template <typename Fn>
void elementwise_blocks(std::size_t n, const Fn& fn) {
  obs::prof::Span span("elementwise", n * sizeof(float));
  if (P::should_parallelize(n, P::kElementwiseThreshold)) {
    P::for_range(n, P::kElementwiseThreshold / 2, fn);
  } else {
    fn(0, n);
  }
}

void require_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw ShapeError(std::string(op) + ": " + shape_to_string(a.shape()) +
                     " vs " + shape_to_string(b.shape()));
  }
}

void require_rank2(const Tensor& a, const char* op) {
  if (a.rank() != 2) {
    throw ShapeError(std::string(op) + " requires rank-2, got " +
                     shape_to_string(a.shape()));
  }
}

void require_out_numel(const Tensor& ref, const Tensor& out, const char* op) {
  REFFIL_CHECK_MSG(out.numel() == ref.numel(),
                   std::string(op) + ": output numel mismatch");
}

void zip_into(const Tensor& a, const Tensor& b, const char* op,
              float (*f)(float, float), Tensor& out) {
  require_same_shape(a, b, op);
  require_out_numel(a, out, op);
  const float* pa = a.begin();
  const float* pb = b.begin();
  float* po = out.begin();
  elementwise_blocks(a.numel(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) po[i] = f(pa[i], pb[i]);
  });
}

Tensor zip(const Tensor& a, const Tensor& b, const char* op,
           float (*f)(float, float)) {
  require_same_shape(a, b, op);
  Tensor out(a.shape());
  zip_into(a, b, op, f, out);
  return out;
}

void scalar_op_into(const Tensor& a, const char* op, float s,
                    float (*f)(float, float), Tensor& out) {
  require_out_numel(a, out, op);
  const float* pa = a.begin();
  float* po = out.begin();
  elementwise_blocks(a.numel(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) po[i] = f(pa[i], s);
  });
}

}  // namespace

Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }

Tensor full(Shape shape, float value) {
  Tensor t(std::move(shape));
  std::fill(t.begin(), t.end(), value);
  return t;
}

Tensor randn(Shape shape, util::Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t) v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor rand_uniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor add(const Tensor& a, const Tensor& b) {
  return zip(a, b, "add", [](float x, float y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return zip(a, b, "sub", [](float x, float y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return zip(a, b, "mul", [](float x, float y) { return x * y; });
}
Tensor div(const Tensor& a, const Tensor& b) {
  return zip(a, b, "div", [](float x, float y) { return x / y; });
}

Tensor add_scalar(const Tensor& a, float s) {
  Tensor out(a.shape());
  add_scalar_into(a, s, out);
  return out;
}

Tensor mul_scalar(const Tensor& a, float s) {
  Tensor out(a.shape());
  mul_scalar_into(a, s, out);
  return out;
}

Tensor neg(const Tensor& a) { return mul_scalar(a, -1.0f); }

void add_into(const Tensor& a, const Tensor& b, Tensor& out) {
  zip_into(a, b, "add_into", [](float x, float y) { return x + y; }, out);
}
void sub_into(const Tensor& a, const Tensor& b, Tensor& out) {
  zip_into(a, b, "sub_into", [](float x, float y) { return x - y; }, out);
}
void mul_into(const Tensor& a, const Tensor& b, Tensor& out) {
  zip_into(a, b, "mul_into", [](float x, float y) { return x * y; }, out);
}
void div_into(const Tensor& a, const Tensor& b, Tensor& out) {
  zip_into(a, b, "div_into", [](float x, float y) { return x / y; }, out);
}
void add_scalar_into(const Tensor& a, float s, Tensor& out) {
  scalar_op_into(a, "add_scalar_into", s,
                 [](float x, float v) { return x + v; }, out);
}
void mul_scalar_into(const Tensor& a, float s, Tensor& out) {
  scalar_op_into(a, "mul_scalar_into", s,
                 [](float x, float v) { return x * v; }, out);
}
void neg_into(const Tensor& a, Tensor& out) { mul_scalar_into(a, -1.0f, out); }
void exp_into(const Tensor& a, Tensor& out) {
  scalar_op_into(a, "exp_into", 0.0f,
                 [](float x, float) { return std::exp(x); }, out);
}
void log_into(const Tensor& a, Tensor& out) {
  scalar_op_into(a, "log_into", 0.0f,
                 [](float x, float) { return std::log(x); }, out);
}
void tanh_into(const Tensor& a, Tensor& out) {
  scalar_op_into(a, "tanh_into", 0.0f,
                 [](float x, float) { return std::tanh(x); }, out);
}
void relu_into(const Tensor& a, Tensor& out) {
  scalar_op_into(a, "relu_into", 0.0f,
                 [](float x, float) { return x > 0.0f ? x : 0.0f; }, out);
}
void sigmoid_into(const Tensor& a, Tensor& out) {
  scalar_op_into(a, "sigmoid_into", 0.0f,
                 [](float x, float) { return 1.0f / (1.0f + std::exp(-x)); },
                 out);
}
void map_into(const Tensor& a, const std::function<float(float)>& f,
              Tensor& out) {
  require_out_numel(a, out, "map_into");
  const float* pa = a.begin();
  float* po = out.begin();
  elementwise_blocks(a.numel(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) po[i] = f(pa[i]);
  });
}
void copy_into(const Tensor& a, Tensor& out) {
  require_out_numel(a, out, "copy_into");
  std::copy(a.begin(), a.end(), out.begin());
}

Tensor exp(const Tensor& a) {
  return map(a, [](float x) { return std::exp(x); });
}
Tensor log(const Tensor& a) {
  return map(a, [](float x) { return std::log(x); });
}
Tensor sqrt(const Tensor& a) {
  return map(a, [](float x) { return std::sqrt(x); });
}
Tensor tanh(const Tensor& a) {
  return map(a, [](float x) { return std::tanh(x); });
}
Tensor relu(const Tensor& a) {
  return map(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor sigmoid(const Tensor& a) {
  return map(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}

Tensor map(const Tensor& a, const std::function<float(float)>& f) {
  Tensor out(a.shape());
  const float* pa = a.begin();
  float* po = out.begin();
  elementwise_blocks(a.numel(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) po[i] = f(pa[i]);
  });
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "add_inplace");
  float* pa = a.begin();
  const float* pb = b.begin();
  const kern::Kernels& k = kern::active();
  elementwise_blocks(a.numel(), [&](std::size_t lo, std::size_t hi) {
    k.add(pa, pb, lo, hi);
  });
}

void axpy_inplace(Tensor& a, float s, const Tensor& b) {
  require_same_shape(a, b, "axpy_inplace");
  float* pa = a.begin();
  const float* pb = b.begin();
  const kern::Kernels& k = kern::active();
  elementwise_blocks(a.numel(), [&](std::size_t lo, std::size_t hi) {
    k.axpy(pa, s, pb, lo, hi);
  });
}

void scale_inplace(Tensor& a, float s) {
  float* pa = a.begin();
  const kern::Kernels& k = kern::active();
  elementwise_blocks(a.numel(), [&](std::size_t lo, std::size_t hi) {
    k.scale(pa, s, lo, hi);
  });
}

namespace {

// Shape validation for the matmul family; returns {m, k, n} of the product.
struct MatmulDims {
  std::size_t m, k, n;
};

MatmulDims matmul_dims(const Tensor& a, const Tensor& b, const char* op,
                       bool transpose_a, bool transpose_b) {
  require_rank2(a, op);
  require_rank2(b, op);
  const std::size_t m = transpose_a ? a.dim(1) : a.dim(0);
  const std::size_t k = transpose_a ? a.dim(0) : a.dim(1);
  const std::size_t bk = transpose_b ? b.dim(1) : b.dim(0);
  const std::size_t n = transpose_b ? b.dim(0) : b.dim(1);
  if (bk != k) {
    throw ShapeError(std::string(op) + ": " + shape_to_string(a.shape()) +
                     " x " + shape_to_string(b.shape()));
  }
  return {m, k, n};
}

void require_out_shape(const Tensor& out, std::size_t m, std::size_t n,
                       const char* op) {
  if (out.rank() != 2 || out.dim(0) != m || out.dim(1) != n) {
    throw ShapeError(std::string(op) + ": output shape " +
                     shape_to_string(out.shape()) + " != [" +
                     std::to_string(m) + ", " + std::to_string(n) + "]");
  }
}

// Dispatch helpers assume `out` is already zero-filled; the public *_into
// wrappers zero it first, while matmul/matmul_nt/matmul_tn construct a fresh
// zeroed tensor. All paths run the same kernels.hpp row kernels.
/// Bytes touched by an m*k x k*n product (both inputs plus the output).
std::uint64_t matmul_bytes(const MatmulDims& d) {
  return static_cast<std::uint64_t>(d.m * d.k + d.k * d.n + d.m * d.n) *
         sizeof(float);
}

void matmul_dispatch(const Tensor& a, const Tensor& b, Tensor& out,
                     const MatmulDims& d) {
  obs::prof::Span span("matmul", matmul_bytes(d));
  if (P::should_parallelize(d.m * d.n * d.k, P::kMatmulFlopThreshold)) {
    P::matmul_into(a, b, out);
  } else {
    kern::active().matmul_rows_nn(a.begin(), b.begin(), out.begin(), 0, d.m,
                                  d.k, d.n);
  }
}

void matmul_nt_dispatch(const Tensor& a, const Tensor& b, Tensor& out,
                        const MatmulDims& d) {
  obs::prof::Span span("matmul_nt", matmul_bytes(d));
  if (P::should_parallelize(d.m * d.n * d.k, P::kMatmulFlopThreshold)) {
    P::matmul_nt_into(a, b, out);
  } else {
    kern::active().matmul_rows_nt(a.begin(), b.begin(), out.begin(), 0, d.m,
                                  d.k, d.n);
  }
}

void matmul_tn_dispatch(const Tensor& a, const Tensor& b, Tensor& out,
                        const MatmulDims& d) {
  obs::prof::Span span("matmul_tn", matmul_bytes(d));
  if (P::should_parallelize(d.m * d.n * d.k, P::kMatmulFlopThreshold)) {
    P::matmul_tn_into(a, b, out);
  } else {
    kern::active().matmul_rows_tn(a.begin(), b.begin(), out.begin(), 0, d.m,
                                  d.k, d.m, d.n);
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  const MatmulDims d = matmul_dims(a, b, "matmul", false, false);
  Tensor out({d.m, d.n});
  matmul_dispatch(a, b, out, d);
  return out;
}

void matmul_into(const Tensor& a, const Tensor& b, Tensor& out) {
  const MatmulDims d = matmul_dims(a, b, "matmul_into", false, false);
  require_out_shape(out, d.m, d.n, "matmul_into");
  std::fill(out.begin(), out.end(), 0.0f);
  matmul_dispatch(a, b, out, d);
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  const MatmulDims d = matmul_dims(a, b, "matmul_nt", false, true);
  Tensor out({d.m, d.n});
  matmul_nt_dispatch(a, b, out, d);
  return out;
}

void matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& out) {
  const MatmulDims d = matmul_dims(a, b, "matmul_nt_into", false, true);
  require_out_shape(out, d.m, d.n, "matmul_nt_into");
  std::fill(out.begin(), out.end(), 0.0f);
  matmul_nt_dispatch(a, b, out, d);
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  const MatmulDims d = matmul_dims(a, b, "matmul_tn", true, false);
  Tensor out({d.m, d.n});
  matmul_tn_dispatch(a, b, out, d);
  return out;
}

void matmul_tn_into(const Tensor& a, const Tensor& b, Tensor& out) {
  const MatmulDims d = matmul_dims(a, b, "matmul_tn_into", true, false);
  require_out_shape(out, d.m, d.n, "matmul_tn_into");
  std::fill(out.begin(), out.end(), 0.0f);
  matmul_tn_dispatch(a, b, out, d);
}

Tensor transpose2d(const Tensor& a) {
  require_rank2(a, "transpose2d");
  Tensor out({a.dim(1), a.dim(0)});
  transpose2d_into(a, out);
  return out;
}

void transpose2d_into(const Tensor& a, Tensor& out) {
  require_rank2(a, "transpose2d_into");
  const std::size_t m = a.dim(0), n = a.dim(1);
  if (out.rank() != 2 || out.dim(0) != n || out.dim(1) != m) {
    throw ShapeError("transpose2d_into: output shape " +
                     shape_to_string(out.shape()) + " for input " +
                     shape_to_string(a.shape()));
  }
  obs::prof::Span span("transpose2d", 2 * m * n * sizeof(float));
  if (P::should_parallelize(m * n, P::kElementwiseThreshold)) {
    P::transpose2d_into(a, out);
    return;
  }
  const float* pa = a.begin();
  float* po = out.begin();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) po[j * m + i] = pa[i * n + j];
  }
}

Tensor matvec(const Tensor& a, const Tensor& x) {
  require_rank2(a, "matvec");
  if (x.rank() != 1 || x.dim(0) != a.dim(1)) {
    throw ShapeError("matvec: " + shape_to_string(a.shape()) + " x " +
                     shape_to_string(x.shape()));
  }
  const std::size_t m = a.dim(0), k = a.dim(1);
  Tensor out({m});
  const float* pa = a.begin();
  const float* px = x.begin();
  float* po = out.begin();
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = pa + i * k;
    float acc = 0.0f;
    for (std::size_t j = 0; j < k; ++j) acc += a_row[j] * px[j];
    po[i] = acc;
  }
  return out;
}

float sum_all(const Tensor& a) {
  double acc = 0.0;
  for (float v : a) acc += v;
  return static_cast<float>(acc);
}

float mean_all(const Tensor& a) {
  REFFIL_CHECK(a.numel() > 0);
  return sum_all(a) / static_cast<float>(a.numel());
}

float max_all(const Tensor& a) {
  REFFIL_CHECK(a.numel() > 0);
  return *std::max_element(a.begin(), a.end());
}

Tensor sum_rows(const Tensor& a) {
  require_rank2(a, "sum_rows");
  Tensor out({a.dim(1)});
  sum_rows_into(a, out);
  return out;
}

void sum_rows_into(const Tensor& a, Tensor& out) {
  require_rank2(a, "sum_rows_into");
  const std::size_t m = a.dim(0), n = a.dim(1);
  REFFIL_CHECK_MSG(out.numel() == n, "sum_rows_into: output numel mismatch");
  const float* pa = a.begin();
  float* po = out.begin();
  std::fill(po, po + n, 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = pa + i * n;
    for (std::size_t j = 0; j < n; ++j) po[j] += a_row[j];
  }
}

Tensor mean_cols(const Tensor& a) {
  require_rank2(a, "mean_cols");
  const std::size_t m = a.dim(0), n = a.dim(1);
  REFFIL_CHECK(n > 0);
  Tensor out({m});
  const float* pa = a.begin();
  float* po = out.begin();
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = pa + i * n;
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += a_row[j];
    po[i] = static_cast<float>(acc / static_cast<double>(n));
  }
  return out;
}

Tensor mean_rows(const Tensor& a) {
  require_rank2(a, "mean_rows");
  REFFIL_CHECK(a.dim(0) > 0);
  Tensor sums = sum_rows(a);
  scale_inplace(sums, 1.0f / static_cast<float>(a.dim(0)));
  return sums;
}

float dot(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "dot");
  double acc = 0.0;
  const float* pa = a.begin();
  const float* pb = b.begin();
  for (std::size_t i = 0; i < a.numel(); ++i) acc += double(pa[i]) * pb[i];
  return static_cast<float>(acc);
}

float l2_norm(const Tensor& a) { return std::sqrt(std::max(0.0f, dot(a, a))); }

float cosine_similarity(const Tensor& a, const Tensor& b) {
  REFFIL_CHECK_MSG(a.numel() == b.numel(), "cosine_similarity: size mismatch");
  double num = 0.0, na = 0.0, nb = 0.0;
  const float* pa = a.begin();
  const float* pb = b.begin();
  for (std::size_t i = 0; i < a.numel(); ++i) {
    num += double(pa[i]) * pb[i];
    na += double(pa[i]) * pa[i];
    nb += double(pb[i]) * pb[i];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb) + 1e-12;
  return static_cast<float>(num / denom);
}

namespace {

// Shared row-parallel driver for the softmax family; `out` must have the
// logits' numel. Rows are independent, so the attention score matrices
// ([T, T] per head) partition cleanly across workers; per-row arithmetic
// lives in the dispatch table (degenerate-row semantics documented there).
void softmax_family_into(const Tensor& logits, Tensor& out, const char* op,
                         bool log_form) {
  require_rank2(logits, op);
  const std::size_t m = logits.dim(0), n = logits.dim(1);
  REFFIL_CHECK_MSG(out.numel() == m * n,
                   std::string(op) + ": output numel mismatch");
  obs::prof::Span span(op, 2 * m * n * sizeof(float));
  const kern::Kernels& k = kern::active();
  const float* src = logits.begin();
  float* dst = out.begin();
  auto rows = [&](std::size_t lo, std::size_t hi) {
    if (log_form) {
      k.log_softmax_rows(src, dst, lo, hi, n);
    } else {
      k.softmax_rows(src, dst, lo, hi, n);
    }
  };
  if (P::should_parallelize(m * n, P::kElementwiseThreshold) &&
      m >= P::kRowThreshold) {
    P::for_range(m, P::kRowThreshold / 2, rows);
  } else {
    rows(0, m);
  }
}

}  // namespace

Tensor softmax_rows(const Tensor& logits) {
  require_rank2(logits, "softmax_rows");
  Tensor out({logits.dim(0), logits.dim(1)});
  softmax_family_into(logits, out, "softmax_rows", /*log_form=*/false);
  return out;
}

void softmax_rows_into(const Tensor& logits, Tensor& out) {
  softmax_family_into(logits, out, "softmax_rows", /*log_form=*/false);
}

Tensor log_softmax_rows(const Tensor& logits) {
  require_rank2(logits, "log_softmax_rows");
  Tensor out({logits.dim(0), logits.dim(1)});
  softmax_family_into(logits, out, "log_softmax_rows", /*log_form=*/true);
  return out;
}

void log_softmax_rows_into(const Tensor& logits, Tensor& out) {
  softmax_family_into(logits, out, "log_softmax_rows", /*log_form=*/true);
}

std::vector<std::size_t> argmax_rows(const Tensor& logits) {
  require_rank2(logits, "argmax_rows");
  const std::size_t m = logits.dim(0), n = logits.dim(1);
  REFFIL_CHECK(n > 0);
  std::vector<std::size_t> out(m);
  for (std::size_t i = 0; i < m; ++i) {
    const float* src = logits.begin() + i * n;
    out[i] = static_cast<std::size_t>(std::max_element(src, src + n) - src);
  }
  return out;
}

Tensor concat_cols(const Tensor& a, const Tensor& b) {
  require_rank2(a, "concat_cols(a)");
  require_rank2(b, "concat_cols(b)");
  if (a.dim(0) != b.dim(0)) {
    throw ShapeError("concat_cols: row mismatch " + shape_to_string(a.shape()) +
                     " vs " + shape_to_string(b.shape()));
  }
  const std::size_t m = a.dim(0), na = a.dim(1), nb = b.dim(1);
  Tensor out({m, na + nb});
  for (std::size_t i = 0; i < m; ++i) {
    std::copy(a.begin() + i * na, a.begin() + (i + 1) * na,
              out.begin() + i * (na + nb));
    std::copy(b.begin() + i * nb, b.begin() + (i + 1) * nb,
              out.begin() + i * (na + nb) + na);
  }
  return out;
}

Tensor concat_rows(const Tensor& a, const Tensor& b) {
  require_rank2(a, "concat_rows(a)");
  require_rank2(b, "concat_rows(b)");
  if (a.dim(1) != b.dim(1)) {
    throw ShapeError("concat_rows: column mismatch " +
                     shape_to_string(a.shape()) + " vs " +
                     shape_to_string(b.shape()));
  }
  std::vector<float> data;
  data.reserve(a.numel() + b.numel());
  data.insert(data.end(), a.begin(), a.end());
  data.insert(data.end(), b.begin(), b.end());
  return Tensor({a.dim(0) + b.dim(0), a.dim(1)}, std::move(data));
}

Tensor slice_rows(const Tensor& a, std::size_t begin, std::size_t end) {
  require_rank2(a, "slice_rows");
  REFFIL_CHECK_MSG(begin <= end && end <= a.dim(0), "slice_rows: bad range");
  const std::size_t n = a.dim(1);
  std::vector<float> data(a.begin() + begin * n, a.begin() + end * n);
  return Tensor({end - begin, n}, std::move(data));
}

Tensor row(const Tensor& a, std::size_t r) {
  require_rank2(a, "row");
  REFFIL_CHECK(r < a.dim(0));
  const std::size_t n = a.dim(1);
  std::vector<float> data(a.begin() + r * n, a.begin() + (r + 1) * n);
  return Tensor({n}, std::move(data));
}

}  // namespace reffil::tensor
