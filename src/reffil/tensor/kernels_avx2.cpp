// "avx2" dispatch target: 8-lane FMA kernels for x86-64. This translation
// unit — and ONLY this one — is compiled with -mavx2 -mfma (see
// src/CMakeLists.txt), so nothing outside the table below may emit AVX2
// instructions and the fat binary still starts on baseline x86-64; the
// dispatcher only hands out this table after __builtin_cpu_supports says
// the running CPU has both AVX2 and FMA.

#include "reffil/tensor/kernels_dispatch.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "reffil/tensor/kernels.hpp"

namespace reffil::tensor::kern {
namespace avx2 {

using vfloat = __m256;
inline constexpr std::size_t kLanes = 8;

inline vfloat vload(const float* p) { return _mm256_loadu_ps(p); }
inline void vstore(float* p, vfloat v) { _mm256_storeu_ps(p, v); }
inline vfloat vbroadcast(float x) { return _mm256_set1_ps(x); }
inline vfloat vadd(vfloat a, vfloat b) { return _mm256_add_ps(a, b); }
inline vfloat vsub(vfloat a, vfloat b) { return _mm256_sub_ps(a, b); }
inline vfloat vmul(vfloat a, vfloat b) { return _mm256_mul_ps(a, b); }
// maxps/minps return the second operand when either input is NaN, so with
// the data in the second slot NaN propagates through vexp's range clamp.
inline vfloat vmax(vfloat a, vfloat b) { return _mm256_max_ps(a, b); }
inline vfloat vmin(vfloat a, vfloat b) { return _mm256_min_ps(a, b); }
inline vfloat vfma(vfloat a, vfloat b, vfloat acc) {
  return _mm256_fmadd_ps(a, b, acc);
}
inline float fma1(float a, float b, float acc) {
  return __builtin_fmaf(a, b, acc);  // vfmadd*ss under -mfma: same rounding
}
inline vfloat vround_nearest(vfloat v) {
  return _mm256_round_ps(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
}
inline vfloat vpow2i(vfloat n) {
  const __m256i e =
      _mm256_add_epi32(_mm256_cvtps_epi32(n), _mm256_set1_epi32(127));
  return _mm256_castsi256_ps(_mm256_slli_epi32(e, 23));
}

/// Fixed-order lane reductions: deterministic per target (the order is a
/// compile-time property of this function, not of the caller's partition).
inline float vreduce_add(vfloat v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(s);
}
inline float vreduce_max(vfloat v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_max_ps(lo, hi);
  s = _mm_max_ps(s, _mm_movehl_ps(s, s));
  s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(s);
}

#define REFFIL_KERN_ISA_NAME "avx2"
#include "reffil/tensor/kernels_simd.inl"
#undef REFFIL_KERN_ISA_NAME

}  // namespace avx2

const Kernels* avx2_table() { return &avx2::kTable; }

}  // namespace reffil::tensor::kern

#else  // !(__AVX2__ && __FMA__)

namespace reffil::tensor::kern {
const Kernels* avx2_table() { return nullptr; }
}  // namespace reffil::tensor::kern

#endif
