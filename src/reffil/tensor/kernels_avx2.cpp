// "avx2" dispatch target: 8-lane FMA kernels for x86-64. This translation
// unit — and ONLY this one — is compiled with -mavx2 -mfma (see
// src/CMakeLists.txt), so nothing outside the table below may emit AVX2
// instructions and the fat binary still starts on baseline x86-64; the
// dispatcher only hands out this table after __builtin_cpu_supports says
// the running CPU has both AVX2 and FMA.

#include "reffil/tensor/kernels_dispatch.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <limits>
#include <vector>

#include "reffil/tensor/kernels.hpp"
#include "reffil/tensor/quant.hpp"

namespace reffil::tensor::kern {
namespace avx2 {

using vfloat = __m256;
inline constexpr std::size_t kLanes = 8;

inline vfloat vload(const float* p) { return _mm256_loadu_ps(p); }
inline void vstore(float* p, vfloat v) { _mm256_storeu_ps(p, v); }
inline vfloat vbroadcast(float x) { return _mm256_set1_ps(x); }
inline vfloat vadd(vfloat a, vfloat b) { return _mm256_add_ps(a, b); }
inline vfloat vsub(vfloat a, vfloat b) { return _mm256_sub_ps(a, b); }
inline vfloat vmul(vfloat a, vfloat b) { return _mm256_mul_ps(a, b); }
// maxps/minps return the second operand when either input is NaN, so with
// the data in the second slot NaN propagates through vexp's range clamp.
inline vfloat vmax(vfloat a, vfloat b) { return _mm256_max_ps(a, b); }
inline vfloat vmin(vfloat a, vfloat b) { return _mm256_min_ps(a, b); }
inline vfloat vfma(vfloat a, vfloat b, vfloat acc) {
  return _mm256_fmadd_ps(a, b, acc);
}
inline float fma1(float a, float b, float acc) {
  return __builtin_fmaf(a, b, acc);  // vfmadd*ss under -mfma: same rounding
}
inline vfloat vround_nearest(vfloat v) {
  return _mm256_round_ps(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
}
inline vfloat vpow2i(vfloat n) {
  const __m256i e =
      _mm256_add_epi32(_mm256_cvtps_epi32(n), _mm256_set1_epi32(127));
  return _mm256_castsi256_ps(_mm256_slli_epi32(e, 23));
}

/// Fixed-order lane reductions: deterministic per target (the order is a
/// compile-time property of this function, not of the caller's partition).
inline float vreduce_add(vfloat v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(s);
}
inline float vreduce_max(vfloat v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_max_ps(lo, hi);
  s = _mm_max_ps(s, _mm_movehl_ps(s, s));
  s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(s);
}

// ---- Q8 block codec --------------------------------------------------------
// Bitwise-identical to detail::q8_* on finite inputs: the abs-max reduction
// is exact, 127/amax and amax/127 round once, _mm256_cvtps_epi32 rounds
// nearest-even under the (default, never changed) MXCSR mode — the same
// rounding nearbyintf performs in the scalar reference — and the clamp to
// [-127, 127] cannot fire on finite data (it only keeps non-finite inputs
// defined). Partial tail blocks delegate to the scalar reference.

inline void q8_encode(const float* x, std::int8_t* q, float* scales,
                      std::size_t n) {
  const std::size_t nfull = n - n % quant::kQ8Block;
  const __m256 abs_mask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
  const __m256 lo = _mm256_set1_ps(-127.0f);
  const __m256 hi = _mm256_set1_ps(127.0f);
  // packs_epi32 + packs_epi16 interleave 128-bit lanes; this permutation of
  // 32-bit groups restores the natural 0..31 byte order.
  const __m256i unshuffle = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  for (std::size_t b0 = 0; b0 < nfull; b0 += quant::kQ8Block) {
    const __m256 v0 = _mm256_loadu_ps(x + b0);
    const __m256 v1 = _mm256_loadu_ps(x + b0 + 8);
    const __m256 v2 = _mm256_loadu_ps(x + b0 + 16);
    const __m256 v3 = _mm256_loadu_ps(x + b0 + 24);
    const __m256 a01 = _mm256_max_ps(_mm256_and_ps(v0, abs_mask),
                                     _mm256_and_ps(v1, abs_mask));
    const __m256 a23 = _mm256_max_ps(_mm256_and_ps(v2, abs_mask),
                                     _mm256_and_ps(v3, abs_mask));
    const float amax = vreduce_max(_mm256_max_ps(a01, a23));
    float* scale = scales + b0 / quant::kQ8Block;
    if (!(amax >= quant::kQ8TinyAmax)) {
      *scale = 0.0f;
      std::memset(q + b0, 0, quant::kQ8Block);
      continue;
    }
    *scale = amax / 127.0f;
    const __m256 vis = _mm256_set1_ps(127.0f / amax);
    const auto quantize = [&](__m256 v) {
      const __m256 t =
          _mm256_min_ps(_mm256_max_ps(_mm256_mul_ps(v, vis), lo), hi);
      return _mm256_cvtps_epi32(t);  // MXCSR default: round-nearest-even
    };
    const __m256i i0 = quantize(v0);
    const __m256i i1 = quantize(v1);
    const __m256i i2 = quantize(v2);
    const __m256i i3 = quantize(v3);
    const __m256i p01 = _mm256_packs_epi32(i0, i1);
    const __m256i p23 = _mm256_packs_epi32(i2, i3);
    const __m256i packed = _mm256_permutevar8x32_epi32(
        _mm256_packs_epi16(p01, p23), unshuffle);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(q + b0), packed);
  }
  if (nfull != n) {
    detail::q8_encode(x + nfull, q + nfull, scales + nfull / quant::kQ8Block,
                      n - nfull);
  }
}

inline void q8_decode(const std::int8_t* q, const float* scales, float* out,
                      std::size_t n) {
  const std::size_t nfull = n - n % quant::kQ8Block;
  for (std::size_t b0 = 0; b0 < nfull; b0 += quant::kQ8Block) {
    const __m256 vs = _mm256_set1_ps(scales[b0 / quant::kQ8Block]);
    for (std::size_t i = 0; i < quant::kQ8Block; i += 8) {
      const __m128i bytes = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(q + b0 + i));
      const __m256 qf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
      _mm256_storeu_ps(out + b0 + i, _mm256_mul_ps(vs, qf));
    }
  }
  if (nfull != n) {
    detail::q8_decode(q + nfull, scales + nfull / quant::kQ8Block, out + nfull,
                      n - nfull);
  }
}

inline void q8_axpy(float* y, float s, const std::int8_t* q,
                    const float* scales, std::size_t n) {
  const std::size_t nfull = n - n % quant::kQ8Block;
  for (std::size_t b0 = 0; b0 < nfull; b0 += quant::kQ8Block) {
    const __m256 vc = _mm256_set1_ps(s * scales[b0 / quant::kQ8Block]);
    for (std::size_t i = 0; i < quant::kQ8Block; i += 8) {
      const __m128i bytes = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(q + b0 + i));
      const __m256 qf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
      // Unfused mul-then-add, matching the scalar reference bitwise.
      _mm256_storeu_ps(y + b0 + i, _mm256_add_ps(_mm256_loadu_ps(y + b0 + i),
                                                 _mm256_mul_ps(vc, qf)));
    }
  }
  if (nfull != n) {
    detail::q8_axpy(y + nfull, s, q + nfull, scales + nfull / quant::kQ8Block,
                    n - nfull);
  }
}

#define REFFIL_KERN_ISA_NAME "avx2"
#include "reffil/tensor/kernels_simd.inl"
#undef REFFIL_KERN_ISA_NAME

}  // namespace avx2

const Kernels* avx2_table() { return &avx2::kTable; }

}  // namespace reffil::tensor::kern

#else  // !(__AVX2__ && __FMA__)

namespace reffil::tensor::kern {
const Kernels* avx2_table() { return nullptr; }
}  // namespace reffil::tensor::kern

#endif
