// Block-quantized tensor codecs (DESIGN.md §13).
//
// Two lossy codecs back the compressed federated wire format:
//
//  * Q8: ggml-style block quantization — int8 blocks of kQ8Block values with
//    one f32 scale per block (scale = amax/127, q = round-nearest-even of
//    value * 127/amax). 1.125 bytes/value, ~3.6x smaller than f32, relative
//    error bounded by amax/254 per block.
//  * F16: IEEE half precision with round-nearest-even. 2 bytes/value. The
//    conversion clamps overflow to +-65504 (max finite half) so a decoded
//    value is always finite when the input was — Tensor::deserialize's
//    finiteness contract survives a f16 round trip.
//
// The Q8 encode/decode/axpy primitives are dispatch-table kernels (scalar
// reference below, AVX2/NEON targets in their TUs). On finite inputs they
// are BITWISE-IDENTICAL across every target — stronger than the matmul 1e-5
// contract — because every step is exact or identically rounded: the amax
// reduction is an exact max, 127/amax and amax/127 are single f32 divides,
// rounding is round-nearest-even in every target (nearbyintf under the
// default FE_TONEAREST mode == cvtps RNE == vcvtnq), int8->f32 conversion
// is exact, and the axpy multiplies then adds unfused. Non-finite inputs
// produce target-defined (but per-target deterministic) bytes and never UB:
// the quantized product is clamped to [-127, 127] before conversion.
//
// The f16 codec is pure scalar bit manipulation shared by every target
// (like im2col: one definition, bitwise everywhere by construction).
#pragma once

#include <cstddef>
#include <cstdint>

namespace reffil::tensor {

namespace quant {

/// Values per Q8 block (one f32 scale each). 32 matches ggml's Q8_0 and
/// gives a 1/32 scale overhead; the last block of a span may be partial.
inline constexpr std::size_t kQ8Block = 32;

inline constexpr std::size_t q8_num_blocks(std::size_t n) {
  return (n + kQ8Block - 1) / kQ8Block;
}

/// Encoded bytes for n values: one f32 scale per block + one int8 per value.
inline constexpr std::size_t q8_encoded_bytes(std::size_t n) {
  return q8_num_blocks(n) * sizeof(float) + n;
}

/// Blocks whose max |value| falls below this quantize to scale 0 and an
/// all-zero block: 127/amax must stay finite, and far above the threshold
/// where int8 quantization preserves any information anyway.
inline constexpr float kQ8TinyAmax = 1e-36f;

/// f32 -> IEEE half with round-nearest-even; +-Inf/NaN and finite overflow
/// clamp to +-65504 (max finite half), so finite-in implies finite-out.
std::uint16_t f32_to_f16(float value);
/// IEEE half -> f32, exact (every half is representable in f32).
float f16_to_f32(std::uint16_t half);

/// True when the half's exponent field is not all-ones (Inf/NaN). Frame
/// decoders reject non-finite halves to uphold the state finiteness
/// invariant (our encoder never emits them).
inline constexpr bool f16_is_finite(std::uint16_t half) {
  return (half & 0x7C00u) != 0x7C00u;
}

void f16_encode_span(const float* x, std::uint16_t* out, std::size_t n);
void f16_decode_span(const std::uint16_t* h, float* out, std::size_t n);

}  // namespace quant

namespace detail {

// Scalar reference Q8 kernels. Like im2col/col2im (kernels.hpp), these are
// defined out-of-line in exactly one baseline-flags TU (quant.cpp) because
// every dispatch table takes their addresses — an inline definition would
// let the AVX2 TU instantiate a copy under -mavx2 and hand the dispatcher a
// pointer to AVX2-encoded "scalar" code.

/// Quantize x[0..n) into int8 blocks of quant::kQ8Block with one f32 scale
/// per block: scales[b] = amax_b / 127, q[i] = RNE(x[i] * 127/amax_b),
/// clamped to [-127, 127]; blocks with amax < kQ8TinyAmax become scale 0,
/// q 0. `scales` must hold q8_num_blocks(n) entries.
void q8_encode(const float* x, std::int8_t* q, float* scales, std::size_t n);

/// out[i] = scales[i / kQ8Block] * q[i].
void q8_decode(const std::int8_t* q, const float* scales, float* out,
               std::size_t n);

/// y[i] += (s * scales[i / kQ8Block]) * q[i] — the dequant-free FedAvg
/// accumulate: one scalar multiply per block, then unfused mul-then-add per
/// element, so the f32 update is never materialized and the result is
/// bitwise-identical across targets and accumulation partitions.
void q8_axpy(float* y, float s, const std::int8_t* q, const float* scales,
             std::size_t n);

}  // namespace detail

}  // namespace reffil::tensor
