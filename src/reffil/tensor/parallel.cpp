#include "reffil/tensor/parallel.hpp"

#include <algorithm>
#include <atomic>

#include "reffil/tensor/kernels_dispatch.hpp"
#include "reffil/util/thread_pool.hpp"

namespace reffil::tensor::parallel {

namespace {

std::atomic<bool> g_enabled{true};

/// Row grain keeping at least ~kMatmulFlopThreshold/4 MACs per block.
std::size_t matmul_row_grain(std::size_t k, std::size_t n) {
  const std::size_t row_cost = std::max<std::size_t>(1, k * n);
  return std::max<std::size_t>(1, kMatmulFlopThreshold / 4 / row_cost);
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool should_parallelize(std::size_t work, std::size_t threshold) {
  return work >= threshold && enabled() &&
         util::global_thread_pool().size() > 1;
}

void for_range(std::size_t n, std::size_t grain,
               const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t blocks = (n + grain - 1) / grain;
  if (blocks <= 1) {
    fn(0, n);
    return;
  }
  util::global_thread_pool().parallel_for(blocks, [&](std::size_t b) {
    fn(b * grain, std::min(n, (b + 1) * grain));
  });
}

void matmul_into(const Tensor& a, const Tensor& b, Tensor& out) {
  const std::size_t k = a.dim(1), n = b.dim(1);
  const float* pa = a.begin();
  const float* pb = b.begin();
  float* po = out.begin();
  // Partition output rows; each block runs the active dispatch target's
  // row kernel — the same one the serial path calls — with the serial
  // per-element order, so the result is bitwise equal to the serial path
  // within every target.
  const kern::Kernels& kt = kern::active();
  for_range(out.dim(0), matmul_row_grain(k, n),
            [&](std::size_t lo, std::size_t hi) {
              kt.matmul_rows_nn(pa, pb, po, lo, hi, k, n);
            });
}

void matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& out) {
  const std::size_t k = a.dim(1), n = b.dim(0);
  const float* pa = a.begin();
  const float* pb = b.begin();
  float* po = out.begin();
  const kern::Kernels& kt = kern::active();
  for_range(out.dim(0), matmul_row_grain(k, n),
            [&](std::size_t lo, std::size_t hi) {
              kt.matmul_rows_nt(pa, pb, po, lo, hi, k, n);
            });
}

void matmul_tn_into(const Tensor& a, const Tensor& b, Tensor& out) {
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  const float* pa = a.begin();
  const float* pb = b.begin();
  float* po = out.begin();
  const kern::Kernels& kt = kern::active();
  for_range(out.dim(0), matmul_row_grain(k, n),
            [&](std::size_t lo, std::size_t hi) {
              kt.matmul_rows_tn(pa, pb, po, lo, hi, k, m, n);
            });
}

void transpose2d_into(const Tensor& a, Tensor& out) {
  const std::size_t m = a.dim(0), n = a.dim(1);
  const float* pa = a.begin();
  float* po = out.begin();
  // Partition the output rows (input columns) so writes stream contiguously.
  const std::size_t grain =
      std::max<std::size_t>(1, kElementwiseThreshold / std::max<std::size_t>(1, m));
  for_range(n, grain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      for (std::size_t i = 0; i < m; ++i) po[j * m + i] = pa[i * n + j];
    }
  });
}

}  // namespace reffil::tensor::parallel
