#include "reffil/tensor/parallel.hpp"

#include <algorithm>
#include <atomic>

#include "reffil/util/thread_pool.hpp"

namespace reffil::tensor::parallel {

namespace {

std::atomic<bool> g_enabled{true};

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool should_parallelize(std::size_t work, std::size_t threshold) {
  return work >= threshold && enabled() &&
         util::global_thread_pool().size() > 1;
}

void for_range(std::size_t n, std::size_t grain,
               const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t blocks = (n + grain - 1) / grain;
  if (blocks <= 1) {
    fn(0, n);
    return;
  }
  util::global_thread_pool().parallel_for(blocks, [&](std::size_t b) {
    fn(b * grain, std::min(n, (b + 1) * grain));
  });
}

void matmul_into(const Tensor& a, const Tensor& b, Tensor& out) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  const float* pa = a.begin();
  const float* pb = b.begin();
  float* po = out.begin();
  // Partition output rows; each row is produced by exactly one thread with
  // the serial i-k-j order, so the result is bitwise equal to the serial
  // kernel. Grain keeps at least ~kMatmulFlopThreshold/4 MACs per block.
  const std::size_t row_cost = std::max<std::size_t>(1, k * n);
  const std::size_t grain = std::max<std::size_t>(
      1, kMatmulFlopThreshold / 4 / row_cost);
  for_range(m, grain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      float* out_row = po + i * n;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float aik = pa[i * k + kk];
        if (aik == 0.0f) continue;
        const float* b_row = pb + kk * n;
        for (std::size_t j = 0; j < n; ++j) out_row[j] += aik * b_row[j];
      }
    }
  });
}

void transpose2d_into(const Tensor& a, Tensor& out) {
  const std::size_t m = a.dim(0), n = a.dim(1);
  const float* pa = a.begin();
  float* po = out.begin();
  // Partition the output rows (input columns) so writes stream contiguously.
  const std::size_t grain =
      std::max<std::size_t>(1, kElementwiseThreshold / std::max<std::size_t>(1, m));
  for_range(n, grain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      for (std::size_t i = 0; i < m; ++i) po[j * m + i] = pa[i * n + j];
    }
  });
}

}  // namespace reffil::tensor::parallel
