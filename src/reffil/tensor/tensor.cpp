#include "reffil/tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace reffil::tensor {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) out << ", ";
    out << shape[i];
  }
  out << ']';
  return out.str();
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  REFFIL_CHECK_MSG(data_.size() == shape_numel(shape_),
                   "data size " + std::to_string(data_.size()) +
                       " does not match shape " + shape_to_string(shape_));
}

Tensor Tensor::view(float* data, Shape shape) {
  const std::size_t n = shape_numel(shape);
  REFFIL_CHECK_MSG(data != nullptr || n == 0,
                   "view over null storage with nonzero numel");
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_.clear();
  t.view_ = data;
  t.view_numel_ = n;
  return t;
}

Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_),
      data_(other.begin(), other.end()),
      view_(nullptr),
      view_numel_(0) {}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  shape_ = other.shape_;
  data_.assign(other.begin(), other.end());
  view_ = nullptr;
  view_numel_ = 0;
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(std::move(other.shape_)),
      data_(std::move(other.data_)),
      view_(other.view_),
      view_numel_(other.view_numel_) {
  other.view_ = nullptr;
  other.view_numel_ = 0;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  shape_ = std::move(other.shape_);
  data_ = std::move(other.data_);
  view_ = other.view_;
  view_numel_ = other.view_numel_;
  other.view_ = nullptr;
  other.view_numel_ = 0;
  return *this;
}

const std::vector<float>& Tensor::data() const {
  REFFIL_CHECK_MSG(view_ == nullptr, "data() on a borrowed view tensor");
  return data_;
}

std::vector<float>& Tensor::data() {
  REFFIL_CHECK_MSG(view_ == nullptr, "data() on a borrowed view tensor");
  return data_;
}

Tensor Tensor::scalar(float value) {
  Tensor t;
  t.data_[0] = value;
  return t;
}

Tensor Tensor::vector(std::vector<float> values) {
  const std::size_t n = values.size();
  return Tensor({n}, std::move(values));
}

Tensor Tensor::matrix(std::initializer_list<std::initializer_list<float>> rows) {
  const std::size_t r = rows.size();
  REFFIL_CHECK_MSG(r > 0, "matrix: no rows");
  const std::size_t c = rows.begin()->size();
  std::vector<float> data;
  data.reserve(r * c);
  for (const auto& row : rows) {
    REFFIL_CHECK_MSG(row.size() == c, "matrix: ragged rows");
    data.insert(data.end(), row.begin(), row.end());
  }
  return Tensor({r, c}, std::move(data));
}

std::size_t Tensor::dim(std::size_t axis) const {
  if (axis >= shape_.size()) {
    throw ShapeError("axis " + std::to_string(axis) + " out of range for " +
                     shape_to_string(shape_));
  }
  return shape_[axis];
}

float Tensor::at(std::size_t flat_index) const {
  REFFIL_CHECK_MSG(flat_index < numel(), "flat index out of range");
  return begin()[flat_index];
}

float& Tensor::at(std::size_t flat_index) {
  REFFIL_CHECK_MSG(flat_index < numel(), "flat index out of range");
  return begin()[flat_index];
}

float Tensor::at2(std::size_t row, std::size_t col) const {
  if (rank() != 2) throw ShapeError("at2 requires rank-2, got " + shape_to_string(shape_));
  REFFIL_CHECK(row < shape_[0] && col < shape_[1]);
  return begin()[row * shape_[1] + col];
}

float& Tensor::at2(std::size_t row, std::size_t col) {
  if (rank() != 2) throw ShapeError("at2 requires rank-2, got " + shape_to_string(shape_));
  REFFIL_CHECK(row < shape_[0] && col < shape_[1]);
  return begin()[row * shape_[1] + col];
}

float Tensor::item() const {
  if (numel() != 1) {
    throw ShapeError("item() on tensor with " + std::to_string(numel()) +
                     " elements");
  }
  return begin()[0];
}

Tensor Tensor::reshaped(Shape new_shape) const& {
  if (shape_numel(new_shape) != numel()) {
    throw ShapeError("cannot reshape " + shape_to_string(shape_) + " to " +
                     shape_to_string(new_shape));
  }
  return Tensor(std::move(new_shape), std::vector<float>(begin(), end()));
}

Tensor Tensor::reshaped(Shape new_shape) && {
  if (shape_numel(new_shape) != numel()) {
    throw ShapeError("cannot reshape " + shape_to_string(shape_) + " to " +
                     shape_to_string(new_shape));
  }
  if (view_ != nullptr) {
    // Cannot take the borrowed storage with us; fall back to a deep copy.
    return Tensor(std::move(new_shape), std::vector<float>(begin(), end()));
  }
  return Tensor(std::move(new_shape), std::move(data_));
}

bool Tensor::operator==(const Tensor& other) const {
  if (shape_ != other.shape_) return false;
  return std::equal(begin(), end(), other.begin());
}

bool Tensor::all_close(const Tensor& other, float atol) const {
  if (shape_ != other.shape_) return false;
  const float* a = begin();
  const float* b = other.begin();
  for (std::size_t i = 0; i < numel(); ++i) {
    if (std::fabs(a[i] - b[i]) > atol) return false;
  }
  return true;
}

void Tensor::serialize(util::ByteWriter& writer) const {
  writer.write_u64(shape_.size());
  for (std::size_t d : shape_) writer.write_u64(d);
  if (view_ != nullptr) {
    writer.write_pod_vector(std::vector<float>(begin(), end()));
  } else {
    writer.write_pod_vector(data_);
  }
}

Tensor Tensor::deserialize(util::ByteReader& reader) {
  const auto rank = reader.read_u64();
  if (rank > 8) throw SerializationError("tensor rank too large");
  Shape shape(rank);
  for (auto& d : shape) d = reader.read_u64();
  auto data = reader.read_pod_vector<float>();
  if (data.size() != shape_numel(shape)) {
    throw SerializationError("tensor payload does not match shape");
  }
  // A corrupt-but-well-framed payload full of NaN/Inf would decode cleanly
  // and silently poison every aggregation it touches; non-finite data is
  // rejected at the deserialization boundary instead. No legitimate payload
  // carries non-finite values (weights are gradient-clipped, Fisher terms
  // are finite sums), so this is a pure corruption check.
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (!std::isfinite(data[i])) {
      throw SerializationError("tensor payload has non-finite value at index " +
                               std::to_string(i));
    }
  }
  return Tensor(std::move(shape), std::move(data));
}

}  // namespace reffil::tensor
