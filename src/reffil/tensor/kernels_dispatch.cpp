// Dispatch-table resolution (see kernels_dispatch.hpp for the contract).
//
// Resolution runs exactly once, on the first active() call, and the chosen
// table never changes afterwards — mid-run retargeting would silently break
// per-target determinism (two halves of a run computed under different
// rounding). Tests that want a specific target fetch it with by_name() and
// call through its pointers directly instead of mutating the process-wide
// choice.

#include "reffil/tensor/kernels_dispatch.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace reffil::tensor::kern {

// Defined one per target TU; a target the toolchain could not compile for
// this architecture returns nullptr and simply doesn't exist in compiled().
const Kernels* scalar_table();
const Kernels* avx2_table();
const Kernels* neon_table();

bool host_supports(const Kernels& k) {
  const std::string_view name = k.name;
  if (name == "scalar") return true;
#if defined(__x86_64__) || defined(_M_X64)
  if (name == "avx2") {
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  }
#endif
#if defined(__aarch64__)
  if (name == "neon") return true;  // ASIMD is baseline on aarch64
#endif
  return false;
}

std::vector<const Kernels*> compiled() {
  std::vector<const Kernels*> out;
  for (const Kernels* k : {scalar_table(), avx2_table(), neon_table()}) {
    if (k != nullptr) out.push_back(k);
  }
  return out;
}

std::vector<const Kernels*> runnable() {
  std::vector<const Kernels*> out;
  for (const Kernels* k : compiled()) {
    if (host_supports(*k)) out.push_back(k);
  }
  return out;
}

const Kernels* by_name(std::string_view name) {
  for (const Kernels* k : compiled()) {
    if (name == k->name) return k;
  }
  return nullptr;
}

namespace {

const Kernels* resolve() {
  const Kernels* scalar = scalar_table();
  if (const char* env = std::getenv("REFFIL_ISA"); env != nullptr && *env) {
    const Kernels* forced = by_name(env);
    if (forced == nullptr) {
      // Unknown/uncompiled names are a configuration error, not a
      // degradation: throwing (rather than silently running something
      // else) keeps benchmark and reproducibility claims honest.
      std::string names;
      for (const Kernels* k : compiled()) {
        names += names.empty() ? "" : ", ";
        names += k->name;
      }
      throw std::runtime_error("REFFIL_ISA=" + std::string(env) +
                               " is not compiled into this binary (have: " +
                               names + ")");
    }
    if (!host_supports(*forced)) {
      // Compiled but not executable here (e.g. REFFIL_ISA=avx2 on a
      // baseline VM): the fat binary must still start, so degrade loudly.
      std::fprintf(stderr,
                   "reffil: REFFIL_ISA=%s is not supported by this CPU; "
                   "falling back to scalar\n",
                   forced->name);
      return scalar;
    }
    return forced;
  }
  // Auto: best supported target. compiled() lists scalar first, so take
  // the last runnable entry.
  const Kernels* best = scalar;
  for (const Kernels* k : runnable()) best = k;
  return best;
}

}  // namespace

const Kernels& active() {
  static const Kernels* chosen = resolve();
  return *chosen;
}

const char* active_name() { return active().name; }

}  // namespace reffil::tensor::kern
