// Shared serial matmul micro-kernels (library-internal).
//
// ops.cpp (serial path) and parallel.cpp (row-parallel path) both call these
// row-range kernels, so the two paths execute byte-for-byte the same
// per-element code: the parallel layer merely hands each worker a disjoint
// [r0, r1) slice of the output rows. That is what makes the parallel==serial
// bitwise guarantee (DESIGN.md §6) hold by construction rather than by test
// luck.
//
// Determinism contract: for every output element out[i, j], the k-dimension
// is streamed in increasing order with one float accumulator and the same
// skip-zero rule the original i-k-j kernel used. The i/j cache tiles only
// reorder *which* outputs are produced when, never the accumulation order
// within one output, so results are bitwise identical to the untiled loop.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace reffil::tensor::detail {

/// Cache-tile extents. kTileJ * kTileK floats of B (64 KiB) plus a row
/// stripe of the output stay L2-resident while K streams; the nt kernel's
/// pack buffer is the same kTileK x kTileJ footprint.
inline constexpr std::size_t kTileJ = 128;
inline constexpr std::size_t kTileK = 128;

/// Rows [r0, r1) of out[m, n] += a[m, K] * b[K, n]. `out` rows must be
/// zero-filled on entry.
inline void matmul_rows_nn(const float* a, const float* b, float* out,
                           std::size_t r0, std::size_t r1, std::size_t K,
                           std::size_t n) {
  for (std::size_t j0 = 0; j0 < n; j0 += kTileJ) {
    const std::size_t j1 = std::min(n, j0 + kTileJ);
    for (std::size_t k0 = 0; k0 < K; k0 += kTileK) {
      const std::size_t k1 = std::min(K, k0 + kTileK);
      for (std::size_t i = r0; i < r1; ++i) {
        const float* a_row = a + i * K;
        float* out_row = out + i * n;
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const float aik = a_row[kk];
          if (aik == 0.0f) continue;
          const float* b_row = b + kk * n;
          for (std::size_t j = j0; j < j1; ++j) out_row[j] += aik * b_row[j];
        }
      }
    }
  }
}

/// Rows [r0, r1) of out[m, n] += a[m, K] * b[n, K]^T. One kTileK x kTileJ
/// block of b at a time is transposed into a reused thread-local pack
/// buffer, then consumed by the same vectorizable j-sweep inner loop as the
/// nn kernel. A naive per-element dot over the rows of b would carry the
/// accumulator through every iteration and defeat vectorization (measured
/// ~5x slower); the pack buffer restores the nn kernel's throughput at a
/// constant 64 KiB footprint — never a full [K, n] transposed temporary,
/// never an allocation after the first call on a thread. Per output element
/// the accumulation still streams k upward with the skip-zero rule on the
/// a element, so results are bitwise identical to
/// matmul_rows_nn(a, transpose(b)). `out` rows must be zero-filled.
inline void matmul_rows_nt(const float* a, const float* b, float* out,
                           std::size_t r0, std::size_t r1, std::size_t K,
                           std::size_t n) {
  thread_local std::vector<float> pack(kTileK * kTileJ);
  for (std::size_t j0 = 0; j0 < n; j0 += kTileJ) {
    const std::size_t j1 = std::min(n, j0 + kTileJ);
    const std::size_t jw = j1 - j0;
    for (std::size_t k0 = 0; k0 < K; k0 += kTileK) {
      const std::size_t k1 = std::min(K, k0 + kTileK);
      for (std::size_t j = j0; j < j1; ++j) {
        const float* b_row = b + j * K;
        for (std::size_t kk = k0; kk < k1; ++kk) {
          pack[(kk - k0) * jw + (j - j0)] = b_row[kk];
        }
      }
      for (std::size_t i = r0; i < r1; ++i) {
        const float* a_row = a + i * K;
        float* out_row = out + i * n + j0;
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const float aik = a_row[kk];
          if (aik == 0.0f) continue;
          const float* p_row = pack.data() + (kk - k0) * jw;
          for (std::size_t j = 0; j < jw; ++j) out_row[j] += aik * p_row[j];
        }
      }
    }
  }
}

/// Rows [r0, r1) of out[m, n] += a[K, m]^T * b[K, n]. The k loop is the
/// outer walk, so per output element the accumulation order still streams k
/// upward; a's "column" a[., i] is read as the contiguous slice a[kk*m + i].
/// `out` rows must be zero-filled.
inline void matmul_rows_tn(const float* a, const float* b, float* out,
                           std::size_t r0, std::size_t r1, std::size_t K,
                           std::size_t m, std::size_t n) {
  for (std::size_t j0 = 0; j0 < n; j0 += kTileJ) {
    const std::size_t j1 = std::min(n, j0 + kTileJ);
    for (std::size_t kk = 0; kk < K; ++kk) {
      const float* a_col = a + kk * m;
      const float* b_row = b + kk * n;
      for (std::size_t i = r0; i < r1; ++i) {
        const float aki = a_col[i];
        if (aki == 0.0f) continue;
        float* out_row = out + i * n;
        for (std::size_t j = j0; j < j1; ++j) out_row[j] += aki * b_row[j];
      }
    }
  }
}

}  // namespace reffil::tensor::detail
