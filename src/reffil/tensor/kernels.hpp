// Scalar reference kernels (library-internal).
//
// These are the bodies behind the "scalar" entry of the runtime dispatch
// table (kernels_dispatch.hpp); the AVX2/NEON targets reimplement the same
// contracts with vector registers. ops.cpp (serial path) and parallel.cpp
// (row-parallel path) both reach whichever target is active through the
// table, so the two paths execute byte-for-byte the same per-element code:
// the parallel layer merely hands each worker a disjoint [r0, r1) slice of
// the output rows. That is what makes the parallel==serial bitwise
// guarantee (DESIGN.md §6) hold by construction rather than by test luck.
//
// Determinism contract: for every output element out[i, j], the k-dimension
// is streamed in increasing order with one float accumulator. The i/j cache
// tiles only reorder *which* outputs are produced when, never the
// accumulation order within one output, so results are bitwise identical to
// the untiled loop.
//
// IEEE semantics: every a[i,k] * b[k,j] product participates in the sum.
// The historical `if (aik == 0.0f) continue;` shortcut is gone — it never
// changed a finite result (adding the exact ±0 product of 0 * finite to the
// accumulator is a no-op, and the accumulator can never be -0 under
// round-to-nearest), but it silently masked non-finite operands: IEEE says
// 0 * NaN = NaN and 0 * Inf = NaN, and the transport layer's poison
// quarantine (DESIGN.md §10) relies on such NaNs surfacing downstream
// instead of vanishing inside a matmul.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <limits>
#include <vector>

#include "reffil/tensor/kernels_dispatch.hpp"

namespace reffil::tensor::detail {

/// Cache-tile extents. kTileJ * kTileK floats of B (64 KiB) plus a row
/// stripe of the output stay L2-resident while K streams; the nt kernel's
/// pack buffer is the same kTileK x kTileJ footprint. The SIMD targets use
/// the same tiling, so per-element accumulation order matches across
/// targets (only the rounding of each step may differ).
inline constexpr std::size_t kTileJ = 128;
inline constexpr std::size_t kTileK = 128;

/// Rows [r0, r1) of out[m, n] += a[m, K] * b[K, n]. `out` rows must be
/// zero-filled on entry.
inline void matmul_rows_nn(const float* a, const float* b, float* out,
                           std::size_t r0, std::size_t r1, std::size_t K,
                           std::size_t n) {
  for (std::size_t j0 = 0; j0 < n; j0 += kTileJ) {
    const std::size_t j1 = std::min(n, j0 + kTileJ);
    for (std::size_t k0 = 0; k0 < K; k0 += kTileK) {
      const std::size_t k1 = std::min(K, k0 + kTileK);
      for (std::size_t i = r0; i < r1; ++i) {
        const float* a_row = a + i * K;
        float* out_row = out + i * n;
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const float aik = a_row[kk];
          const float* b_row = b + kk * n;
          for (std::size_t j = j0; j < j1; ++j) out_row[j] += aik * b_row[j];
        }
      }
    }
  }
}

/// Rows [r0, r1) of out[m, n] += a[m, K] * b[n, K]^T. One kTileK x kTileJ
/// block of b at a time is transposed into a reused thread-local pack
/// buffer, then consumed by the same vectorizable j-sweep inner loop as the
/// nn kernel. A naive per-element dot over the rows of b would carry the
/// accumulator through every iteration and defeat vectorization (measured
/// ~5x slower); the pack buffer restores the nn kernel's throughput at a
/// constant 64 KiB footprint — never a full [K, n] transposed temporary,
/// never an allocation after the first call on a thread. Per output element
/// the accumulation still streams k upward, so results are bitwise
/// identical to matmul_rows_nn(a, transpose(b)). `out` rows must be
/// zero-filled.
inline void matmul_rows_nt(const float* a, const float* b, float* out,
                           std::size_t r0, std::size_t r1, std::size_t K,
                           std::size_t n) {
  thread_local std::vector<float> pack(kTileK * kTileJ);
  for (std::size_t j0 = 0; j0 < n; j0 += kTileJ) {
    const std::size_t j1 = std::min(n, j0 + kTileJ);
    const std::size_t jw = j1 - j0;
    for (std::size_t k0 = 0; k0 < K; k0 += kTileK) {
      const std::size_t k1 = std::min(K, k0 + kTileK);
      for (std::size_t j = j0; j < j1; ++j) {
        const float* b_row = b + j * K;
        for (std::size_t kk = k0; kk < k1; ++kk) {
          pack[(kk - k0) * jw + (j - j0)] = b_row[kk];
        }
      }
      for (std::size_t i = r0; i < r1; ++i) {
        const float* a_row = a + i * K;
        float* out_row = out + i * n + j0;
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const float aik = a_row[kk];
          const float* p_row = pack.data() + (kk - k0) * jw;
          for (std::size_t j = 0; j < jw; ++j) out_row[j] += aik * p_row[j];
        }
      }
    }
  }
}

/// Rows [r0, r1) of out[m, n] += a[K, m]^T * b[K, n]. The k loop is the
/// outer walk, so per output element the accumulation order still streams k
/// upward; a's "column" a[., i] is read as the contiguous slice a[kk*m + i].
/// `out` rows must be zero-filled.
inline void matmul_rows_tn(const float* a, const float* b, float* out,
                           std::size_t r0, std::size_t r1, std::size_t K,
                           std::size_t m, std::size_t n) {
  for (std::size_t j0 = 0; j0 < n; j0 += kTileJ) {
    const std::size_t j1 = std::min(n, j0 + kTileJ);
    for (std::size_t kk = 0; kk < K; ++kk) {
      const float* a_col = a + kk * m;
      const float* b_row = b + kk * n;
      for (std::size_t i = r0; i < r1; ++i) {
        const float aki = a_col[i];
        float* out_row = out + i * n;
        for (std::size_t j = j0; j < j1; ++j) out_row[j] += aki * b_row[j];
      }
    }
  }
}

// ---- blocked elementwise spans ---------------------------------------------
// Element-independent (no accumulator crosses elements), so any block
// partition of [lo, hi) produces bitwise-identical results; the SIMD
// targets deliberately use unfused mul-then-add to stay bitwise equal to
// these loops.

inline void add_span(float* y, const float* x, std::size_t lo,
                     std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) y[i] += x[i];
}

inline void axpy_span(float* y, float s, const float* x, std::size_t lo,
                      std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) y[i] += s * x[i];
}

inline void scale_span(float* y, float s, std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) y[i] *= s;
}

// ---- row-range softmax -----------------------------------------------------
// Degenerate-row semantics (shared by every dispatch target): a row whose
// maximum is -inf (every logit -inf) has no information — the old code
// computed exp(-inf - -inf) = exp(NaN) and emitted a NaN row. Defined
// result: softmax returns the uniform distribution 1/n and log_softmax
// returns log(1/n) = -log(n), so exp(log_softmax(x)) == softmax(x) on every
// input. Rows containing NaN still propagate NaN (they are *poisoned*, not
// merely uninformative — the transport quarantine wants to see them).

inline void softmax_rows(const float* src, float* dst, std::size_t r0,
                         std::size_t r1, std::size_t n) {
  if (n == 0) return;
  for (std::size_t i = r0; i < r1; ++i) {
    const float* s = src + i * n;
    float* d = dst + i * n;
    const float mx = *std::max_element(s, s + n);
    if (mx == -std::numeric_limits<float>::infinity()) {
      std::fill(d, d + n, 1.0f / static_cast<float>(n));
      continue;
    }
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      d[j] = std::exp(s[j] - mx);
      total += d[j];
    }
    for (std::size_t j = 0; j < n; ++j) {
      d[j] = static_cast<float>(d[j] / total);
    }
  }
}

inline void log_softmax_rows(const float* src, float* dst, std::size_t r0,
                             std::size_t r1, std::size_t n) {
  if (n == 0) return;
  for (std::size_t i = r0; i < r1; ++i) {
    const float* s = src + i * n;
    float* d = dst + i * n;
    const float mx = *std::max_element(s, s + n);
    if (mx == -std::numeric_limits<float>::infinity()) {
      std::fill(d, d + n, -std::log(static_cast<float>(n)));
      continue;
    }
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) total += std::exp(s[j] - mx);
    const float log_total = static_cast<float>(std::log(total));
    for (std::size_t j = 0; j < n; ++j) d[j] = s[j] - mx - log_total;
  }
}

// ---- conv2d lowering -------------------------------------------------------
// Pure data movement — bitwise identical on every target, so every dispatch
// table points here. The stride==1 interior of each output row is one
// contiguous input segment, copied (im2col) or accumulated (col2im) without
// the per-tap bounds test the border pixels need; at stride 1 that turns
// the dominant inner loop into memcpy / a trivially vectorizable += sweep.
//
// Defined out-of-line (kernels_scalar.cpp): every dispatch table takes these
// functions' addresses, and an inline definition would be ODR-used from TUs
// built with different ISA flags — one arbitrary copy would win at link
// time. A single out-of-line definition under baseline flags keeps the
// "bitwise identical on every target" claim true by construction.

void im2col(const float* in, float* col, const kern::Conv2dGeom& g);
void col2im(const float* dcol, float* din, const kern::Conv2dGeom& g);

}  // namespace reffil::tensor::detail
