// Parallel tensor kernels layered on the reentrant thread pool.
//
// Every kernel here partitions its output across disjoint row/element blocks,
// so each output element is written by exactly one thread with the same
// per-element operation order as the serial kernel — results are therefore
// bitwise identical to the serial code regardless of thread count. Both
// sides call through the runtime dispatch table (kernels_dispatch.hpp), so
// the guarantee holds within whichever ISA target is active. ops.cpp
// dispatches to this layer above the thresholds below and keeps the plain
// serial loops underneath them, so small tensors never pay fork/join
// overhead and the parallel threshold is also a determinism boundary that is
// trivially satisfied (identical either way).
//
// Reentrancy: these kernels run both from the application's top level (e.g.
// bench_micro, single-client training) and from inside the federated
// runtime's per-client parallel_for. In the nested case the pool inlines the
// kernel on the caller's chunk, so client-level and kernel-level parallelism
// compose without oversubscription or deadlock.
#pragma once

#include <cstddef>
#include <functional>

#include "reffil/tensor/tensor.hpp"

namespace reffil::tensor::parallel {

// ---- thresholds (see DESIGN.md §6) -----------------------------------------
/// Minimum multiply-accumulate count (m*n*k) before matmul fans out.
inline constexpr std::size_t kMatmulFlopThreshold = std::size_t{1} << 20;
/// Minimum element count before elementwise/axpy/copy kernels fan out.
inline constexpr std::size_t kElementwiseThreshold = std::size_t{1} << 15;
/// Minimum row count before row-independent kernels (softmax) fan out.
inline constexpr std::size_t kRowThreshold = 64;

/// Process-wide switch (default on). Tests and benches disable it to compare
/// parallel results against the serial kernels bit-for-bit.
bool enabled();
void set_enabled(bool on);

/// True when the given problem size should use the parallel path: the switch
/// is on, the global pool has more than one worker, and work >= threshold.
bool should_parallelize(std::size_t work, std::size_t threshold);

/// Run fn(lo, hi) over a partition of [0, n) into contiguous blocks of at
/// least `grain` elements, on the global pool. fn must only write inside its
/// own [lo, hi) block. Safe to call from inside pool tasks (runs inline).
void for_range(std::size_t n, std::size_t grain,
               const std::function<void(std::size_t, std::size_t)>& fn);

// ---- kernels (write into preallocated outputs) -----------------------------
// The matmul family partitions output rows across workers and runs the same
// tiled row kernels (tensor/kernels.hpp) the serial path uses, so results
// are bitwise identical on either side of the dispatch threshold. `out`
// must be zero-initialised for all three.
/// out[m,n] += a[m,k] x b[k,n].
void matmul_into(const Tensor& a, const Tensor& b, Tensor& out);
/// out[m,n] += a[m,k] x b[n,k]ᵀ (fused transpose-free variant).
void matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& out);
/// out[m,n] += a[k,m]ᵀ x b[k,n] (fused transpose-free variant).
void matmul_tn_into(const Tensor& a, const Tensor& b, Tensor& out);
/// out[n,m] = transpose of a[m,n], output rows partitioned across workers.
void transpose2d_into(const Tensor& a, Tensor& out);

}  // namespace reffil::tensor::parallel
