// Non-differentiable tensor operations.
//
// These are plain numeric kernels; the autograd layer composes them into
// differentiable ops. All binary ops require exactly matching shapes except
// the *_scalar variants — implicit broadcasting is deliberately absent to
// keep shape errors loud (Core Guidelines P.4: compile/run-time checkable
// interfaces).
//
// Hot kernels (matmul, transpose2d, elementwise/axpy, row softmax) dispatch
// to reffil/tensor/parallel.hpp above a size threshold and run on the
// reentrant global thread pool; below it they use the serial loops. Both
// paths produce bitwise-identical results (disjoint output partitions, same
// per-element order), so numerics never depend on thread count.
#pragma once

#include <functional>

#include "reffil/tensor/tensor.hpp"
#include "reffil/util/rng.hpp"

namespace reffil::tensor {

// ---- construction -----------------------------------------------------------
Tensor zeros(Shape shape);
Tensor ones(Shape shape);
Tensor full(Shape shape, float value);
/// I.i.d. N(mean, stddev) entries.
Tensor randn(Shape shape, util::Rng& rng, float mean = 0.0f, float stddev = 1.0f);
/// I.i.d. U[lo, hi) entries.
Tensor rand_uniform(Shape shape, util::Rng& rng, float lo = 0.0f, float hi = 1.0f);

// ---- elementwise ------------------------------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);
Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor tanh(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor map(const Tensor& a, const std::function<float(float)>& f);

// Destination forms of the elementwise family. Each overwrites a
// preallocated `out` of the input's shape and runs the exact loop of its
// allocating twin (same blocking, same per-element order), so results are
// bitwise identical — these exist so graph-replay closures and backward
// scratch can reuse arena/pool storage instead of allocating. `out` may not
// alias an input except where noted.
void add_into(const Tensor& a, const Tensor& b, Tensor& out);
void sub_into(const Tensor& a, const Tensor& b, Tensor& out);
void mul_into(const Tensor& a, const Tensor& b, Tensor& out);
void div_into(const Tensor& a, const Tensor& b, Tensor& out);
void add_scalar_into(const Tensor& a, float s, Tensor& out);
void mul_scalar_into(const Tensor& a, float s, Tensor& out);
void neg_into(const Tensor& a, Tensor& out);
void exp_into(const Tensor& a, Tensor& out);
void log_into(const Tensor& a, Tensor& out);
void tanh_into(const Tensor& a, Tensor& out);
void relu_into(const Tensor& a, Tensor& out);
void sigmoid_into(const Tensor& a, Tensor& out);
void map_into(const Tensor& a, const std::function<float(float)>& f, Tensor& out);
/// Shape-checked elementwise copy a -> out.
void copy_into(const Tensor& a, Tensor& out);

/// a += b (in place, same shape).
void add_inplace(Tensor& a, const Tensor& b);
/// a += s * b (axpy, same shape).
void axpy_inplace(Tensor& a, float s, const Tensor& b);
/// a *= s.
void scale_inplace(Tensor& a, float s);

// ---- linear algebra ---------------------------------------------------------
// The matmul family is cache-tiled over i/j with k streamed in order, so the
// tiled kernels are bitwise identical to the plain triple loop, and
// row-parallel above parallel::kMatmulFlopThreshold. The _nt/_tn fused
// variants read the transposed operand in place — matmul_nt(a, b) ==
// matmul(a, transpose2d(b)) and matmul_tn(a, b) == matmul(transpose2d(a), b)
// bitwise, with no transposed temporary ever materialized. The *_into forms
// overwrite a preallocated output (for pool::Scratch reuse on the autograd
// backward path).
/// 2-D matrix product [m,k]x[k,n] -> [m,n].
Tensor matmul(const Tensor& a, const Tensor& b);
void matmul_into(const Tensor& a, const Tensor& b, Tensor& out);
/// Fused a·bᵀ: [m,k]x[n,k] -> [m,n].
Tensor matmul_nt(const Tensor& a, const Tensor& b);
void matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& out);
/// Fused aᵀ·b: [k,m]x[k,n] -> [m,n].
Tensor matmul_tn(const Tensor& a, const Tensor& b);
void matmul_tn_into(const Tensor& a, const Tensor& b, Tensor& out);
/// 2-D transpose (parallel above parallel::kElementwiseThreshold).
Tensor transpose2d(const Tensor& a);
void transpose2d_into(const Tensor& a, Tensor& out);
/// Matrix-vector product [m,k]x[k] -> [m].
Tensor matvec(const Tensor& a, const Tensor& x);

// ---- reductions -------------------------------------------------------------
float sum_all(const Tensor& a);
float mean_all(const Tensor& a);
float max_all(const Tensor& a);
/// Column sums of a 2-D tensor: [m,n] -> [n].
Tensor sum_rows(const Tensor& a);
/// Column sums into a preallocated out with numel n (shape is not changed).
void sum_rows_into(const Tensor& a, Tensor& out);
/// Row means of a 2-D tensor: [m,n] -> [m].
Tensor mean_cols(const Tensor& a);
/// Mean over axis 0 of a 2-D tensor: [m,n] -> [n].
Tensor mean_rows(const Tensor& a);

// ---- vector geometry --------------------------------------------------------
float dot(const Tensor& a, const Tensor& b);
float l2_norm(const Tensor& a);
/// cos(a, b) with epsilon-guarded denominators; inputs are flattened.
float cosine_similarity(const Tensor& a, const Tensor& b);

// ---- row-wise softmax family -------------------------------------------------
/// Numerically stable row softmax of a 2-D tensor.
Tensor softmax_rows(const Tensor& logits);
void softmax_rows_into(const Tensor& logits, Tensor& out);
/// Numerically stable row log-softmax of a 2-D tensor.
Tensor log_softmax_rows(const Tensor& logits);
void log_softmax_rows_into(const Tensor& logits, Tensor& out);
/// Index of the max element in each row: [m,n] -> vector<size_t> of length m.
std::vector<std::size_t> argmax_rows(const Tensor& logits);

// ---- structure ---------------------------------------------------------------
/// Concatenate 2-D tensors along axis 1 (same row count).
Tensor concat_cols(const Tensor& a, const Tensor& b);
/// Concatenate 2-D tensors along axis 0 (same column count).
Tensor concat_rows(const Tensor& a, const Tensor& b);
/// Copy of rows [begin, end) of a 2-D tensor.
Tensor slice_rows(const Tensor& a, std::size_t begin, std::size_t end);
/// Copy of row r of a 2-D tensor as a 1-D tensor.
Tensor row(const Tensor& a, std::size_t r);

}  // namespace reffil::tensor
