// Runtime CPU-feature-dispatched kernel table (DESIGN.md §12).
//
// Every hot inner loop of the tensor layer — the matmul row kernels, the
// blocked elementwise/axpy sweeps, the row-range softmax pair, and the conv
// lowering (im2col/col2im) — is reached through one table of function
// pointers resolved exactly once at startup. The binary carries every
// target the toolchain could compile (scalar always; AVX2 on x86-64; NEON
// on aarch64) and picks the best one the *running* CPU supports, so a
// single fat binary runs unmodified from a baseline VM to an AVX2 server.
//
// Determinism contract (per dispatch target):
//  * Within one target, results are a pure function of the inputs: the
//    parallel layer row/block-partitions the same table kernels the serial
//    path calls, so parallel == serial bitwise by construction, exactly as
//    before (DESIGN.md §6).
//  * The scalar target is bitwise-identical to the pre-dispatch kernels on
//    finite inputs (it IS those kernels, minus the skip-zero rule, which
//    never changed a finite result — see kernels.hpp).
//  * Across targets, matmul and softmax may differ by rounding (FMA
//    contraction, polynomial exp); the cross-ISA test suite bounds the
//    divergence at 1e-5 relative. Elementwise kernels and im2col/col2im
//    are bitwise-identical across every target (no fused ops, pure data
//    movement). The q8 codec kernels are bitwise-identical across targets
//    on finite inputs too (exact max reduction, shared round-nearest-even,
//    unfused accumulate — see quant.hpp), which the compressed wire format
//    relies on for cross-ISA reproducibility.
//
// Selection order: the REFFIL_ISA environment variable ("scalar", "avx2",
// "neon") wins if set — an unknown name throws, a compiled-but-unsupported
// name falls back to scalar with a warning on stderr (the fat binary must
// still start on a baseline host) — otherwise the best target
// host_supports() accepts is chosen.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace reffil::tensor::kern {

/// Conv2d lowering geometry shared by im2col/col2im and the autograd conv
/// node that drives them.
struct Conv2dGeom {
  std::size_t cin, h, w, kh, kw, stride, pad, hout, wout;
};

/// One dispatch target. All pointers are non-null in every registered
/// table. Row-range kernels take [r0, r1) so the parallel layer can hand
/// each worker a disjoint slice of the same code path the serial caller
/// uses.
struct Kernels {
  const char* name;

  /// Rows [r0, r1) of out[m, n] += a[m, K] * b[K, n]; `out` rows zeroed on
  /// entry. Per output element, k streams in increasing order into a single
  /// accumulator (fused or not is the target's choice, but fixed per
  /// target).
  void (*matmul_rows_nn)(const float* a, const float* b, float* out,
                         std::size_t r0, std::size_t r1, std::size_t K,
                         std::size_t n);
  /// Rows [r0, r1) of out[m, n] += a[m, K] * b[n, K]^T.
  void (*matmul_rows_nt)(const float* a, const float* b, float* out,
                         std::size_t r0, std::size_t r1, std::size_t K,
                         std::size_t n);
  /// Rows [r0, r1) of out[m, n] += a[K, m]^T * b[K, n].
  void (*matmul_rows_tn)(const float* a, const float* b, float* out,
                         std::size_t r0, std::size_t r1, std::size_t K,
                         std::size_t m, std::size_t n);

  /// y[i] += x[i] over [lo, hi). Bitwise-identical across targets.
  void (*add)(float* y, const float* x, std::size_t lo, std::size_t hi);
  /// y[i] += s * x[i] over [lo, hi) — mul-then-add in every target (never
  /// fused), so results are partition-invariant and bitwise-identical
  /// across targets.
  void (*axpy)(float* y, float s, const float* x, std::size_t lo,
               std::size_t hi);
  /// y[i] *= s over [lo, hi). Bitwise-identical across targets.
  void (*scale)(float* y, float s, std::size_t lo, std::size_t hi);

  /// Rows [r0, r1) of dst = softmax(src) along n. Degenerate rows whose
  /// maximum is -inf yield the uniform distribution 1/n; rows containing
  /// NaN yield NaN (see DESIGN.md §12).
  void (*softmax_rows)(const float* src, float* dst, std::size_t r0,
                       std::size_t r1, std::size_t n);
  /// Rows [r0, r1) of dst = log_softmax(src); degenerate all -inf rows
  /// yield -log(n) (the log of the uniform row, so exp∘log_softmax ==
  /// softmax holds on every input).
  void (*log_softmax_rows)(const float* src, float* dst, std::size_t r0,
                           std::size_t r1, std::size_t n);

  /// Unfold input[cin, h, w] into col[cin*kh*kw, hout*wout] (every element
  /// written; padding as 0). Pure data movement, bitwise-identical across
  /// targets.
  void (*im2col)(const float* in, float* col, const Conv2dGeom& g);
  /// Adjoint scatter of im2col; `din` must be zero-filled on entry.
  void (*col2im)(const float* dcol, float* din, const Conv2dGeom& g);

  // Q8 block codec (quant.hpp): int8 blocks of quant::kQ8Block with one f32
  // scale each. Bitwise-identical across targets on finite inputs.

  /// Quantize x[0..n): scales[b] = amax_b/127, q[i] = RNE(x[i] * 127/amax_b).
  void (*q8_encode)(const float* x, std::int8_t* q, float* scales,
                    std::size_t n);
  /// out[i] = scales[i / kQ8Block] * q[i].
  void (*q8_decode)(const std::int8_t* q, const float* scales, float* out,
                    std::size_t n);
  /// y[i] += (s * scales[i / kQ8Block]) * q[i] — dequant-free accumulate
  /// (one scalar multiply per block, unfused mul-then-add per element).
  void (*q8_axpy)(float* y, float s, const std::int8_t* q, const float* scales,
                  std::size_t n);
};

/// The table selected for this process. Resolved once on first use
/// (REFFIL_ISA override, else best supported); stable for the process
/// lifetime.
const Kernels& active();

/// active().name — what `reffil_run --json` reports as "isa".
const char* active_name();

/// Look up a compiled-in target by name ("scalar" | "avx2" | "neon").
/// Returns nullptr when the name is unknown or the target was not compiled
/// into this binary. The result may still fail host_supports().
const Kernels* by_name(std::string_view name);

/// True when the running CPU can execute this target's code.
bool host_supports(const Kernels& k);

/// Every target compiled into this binary, scalar first.
std::vector<const Kernels*> compiled();

/// compiled() filtered by host_supports() — the targets the cross-ISA
/// equivalence suite can actually run on this machine.
std::vector<const Kernels*> runnable();

}  // namespace reffil::tensor::kern
