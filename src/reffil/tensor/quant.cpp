// Scalar reference implementations of the quantized codecs — the single
// baseline-flags definitions every dispatch table points at (see quant.hpp
// for the ODR rationale) and the bitwise anchor the AVX2/NEON q8 kernels
// are tested against.

#include "reffil/tensor/quant.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace reffil::tensor {

namespace quant {

std::uint16_t f32_to_f16(float value) {
  // Round-nearest-even f32 -> f16 via the usual exponent-rebias trick:
  // subnormal halves are produced by adding a magic constant so the float
  // rounding hardware performs the shift+round, normal halves by rebiasing
  // and adding half an ulp (+ the parity bit for ties-to-even).
  // Everything at or above 65520.0f (the 65504 | Inf rounding midpoint,
  // ties-to-even) — including Inf and NaN — clamps to the max finite half.
  constexpr std::uint32_t kF16OverflowAsF32 = 0x477FF000u;  // 65520.0f
  constexpr std::uint32_t kDenormMagic = ((127u - 15u) + (23u - 10u) + 1u)
                                         << 23;
  std::uint32_t f;
  std::memcpy(&f, &value, sizeof(f));
  const std::uint16_t sign = static_cast<std::uint16_t>((f >> 16) & 0x8000u);
  f &= 0x7FFFFFFFu;

  std::uint16_t out;
  if (f >= kF16OverflowAsF32) {
    // Finite overflow, Inf and NaN all clamp to the max finite half: the
    // wire format promises finite-in -> finite-out, and callers feed finite
    // data (Tensor invariant).
    out = 0x7BFFu;  // 65504
  } else if (f < (113u << 23)) {  // < 2^-14: subnormal half (or zero)
    float tmp;
    std::memcpy(&tmp, &f, sizeof(tmp));
    float magic;
    std::memcpy(&magic, &kDenormMagic, sizeof(magic));
    tmp += magic;  // hardware performs shift + round-nearest-even
    std::uint32_t bits;
    std::memcpy(&bits, &tmp, sizeof(bits));
    out = static_cast<std::uint16_t>(bits - kDenormMagic);
  } else {
    const std::uint32_t mant_odd = (f >> 13) & 1u;  // ties-to-even parity
    f += (static_cast<std::uint32_t>(15 - 127) << 23) + 0xFFFu;
    f += mant_odd;
    out = static_cast<std::uint16_t>(f >> 13);
  }
  return static_cast<std::uint16_t>(out | sign);
}

float f16_to_f32(std::uint16_t half) {
  constexpr std::uint32_t kShiftedExp = 0x7C00u << 13;
  constexpr std::uint32_t kMagic = 113u << 23;
  std::uint32_t bits = static_cast<std::uint32_t>(half & 0x7FFFu) << 13;
  const std::uint32_t exp = bits & kShiftedExp;
  bits += (127u - 15u) << 23;  // rebias exponent
  if (exp == kShiftedExp) {
    bits += (128u - 16u) << 23;  // Inf/NaN: extend exponent to all-ones
  } else if (exp == 0) {
    // Subnormal half: renormalize through a float subtract.
    bits += 1u << 23;
    float tmp;
    std::memcpy(&tmp, &bits, sizeof(tmp));
    float magic;
    std::memcpy(&magic, &kMagic, sizeof(magic));
    tmp -= magic;
    std::memcpy(&bits, &tmp, sizeof(bits));
  }
  bits |= static_cast<std::uint32_t>(half & 0x8000u) << 16;
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

void f16_encode_span(const float* x, std::uint16_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = f32_to_f16(x[i]);
}

void f16_decode_span(const std::uint16_t* h, float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = f16_to_f32(h[i]);
}

}  // namespace quant

namespace detail {

void q8_encode(const float* x, std::int8_t* q, float* scales, std::size_t n) {
  for (std::size_t b0 = 0, blk = 0; b0 < n; b0 += quant::kQ8Block, ++blk) {
    const std::size_t m = std::min(quant::kQ8Block, n - b0);
    float amax = 0.0f;
    for (std::size_t i = 0; i < m; ++i) {
      amax = std::max(amax, std::fabs(x[b0 + i]));
    }
    if (!(amax >= quant::kQ8TinyAmax)) {
      scales[blk] = 0.0f;
      std::memset(q + b0, 0, m);
      continue;
    }
    const float iscale = 127.0f / amax;
    scales[blk] = amax / 127.0f;
    for (std::size_t i = 0; i < m; ++i) {
      // amax * (127/amax) <= 127 * (1 + 2^-23), which still rounds to 127,
      // so the clamp only fires on non-finite inputs — it keeps the f->i8
      // conversion defined there (matching the SIMD targets' saturation)
      // without changing any finite result.
      float t = x[b0 + i] * iscale;
      t = t >= -127.0f ? t : -127.0f;
      t = t <= 127.0f ? t : 127.0f;
      // Round-nearest-even under the (never changed) default rounding mode —
      // identical to _mm256_cvtps_epi32 / vcvtnq_s32_f32.
      q[b0 + i] = static_cast<std::int8_t>(std::nearbyintf(t));
    }
  }
}

void q8_decode(const std::int8_t* q, const float* scales, float* out,
               std::size_t n) {
  for (std::size_t b0 = 0, blk = 0; b0 < n; b0 += quant::kQ8Block, ++blk) {
    const std::size_t m = std::min(quant::kQ8Block, n - b0);
    const float scale = scales[blk];
    for (std::size_t i = 0; i < m; ++i) {
      out[b0 + i] = scale * static_cast<float>(q[b0 + i]);
    }
  }
}

void q8_axpy(float* y, float s, const std::int8_t* q, const float* scales,
             std::size_t n) {
  for (std::size_t b0 = 0, blk = 0; b0 < n; b0 += quant::kQ8Block, ++blk) {
    const std::size_t m = std::min(quant::kQ8Block, n - b0);
    const float c = s * scales[blk];  // one rounding per block
    for (std::size_t i = 0; i < m; ++i) {
      // Unfused mul-then-add, like axpy_span: partition-invariant and
      // bitwise-identical across targets.
      y[b0 + i] += c * static_cast<float>(q[b0 + i]);
    }
  }
}

}  // namespace detail

}  // namespace reffil::tensor
