// "neon" dispatch target: 4-lane FMA kernels for aarch64. NEON (ASIMD) is
// baseline on aarch64, so unlike the AVX2 TU this one needs no special
// compile flags — the guard below simply compiles it out on other
// architectures. armv7 NEON is intentionally excluded: the kernels rely on
// aarch64-only round/reduce instructions (vrndnq/vmaxvq/vcvtnq) and armv7
// NEON is not fully IEEE-compliant (flush-to-zero), which would break the
// per-target determinism contract.

#include "reffil/tensor/kernels_dispatch.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <limits>
#include <vector>

#include "reffil/tensor/kernels.hpp"
#include "reffil/tensor/quant.hpp"

namespace reffil::tensor::kern {
namespace neon {

using vfloat = float32x4_t;
inline constexpr std::size_t kLanes = 4;

inline vfloat vload(const float* p) { return vld1q_f32(p); }
inline void vstore(float* p, vfloat v) { vst1q_f32(p, v); }
inline vfloat vbroadcast(float x) { return vdupq_n_f32(x); }
inline vfloat vadd(vfloat a, vfloat b) { return vaddq_f32(a, b); }
inline vfloat vsub(vfloat a, vfloat b) { return vsubq_f32(a, b); }
inline vfloat vmul(vfloat a, vfloat b) { return vmulq_f32(a, b); }
// vmaxq/vminq propagate NaN lanewise (default NaN behavior on aarch64).
inline vfloat vmax(vfloat a, vfloat b) { return vmaxq_f32(a, b); }
inline vfloat vmin(vfloat a, vfloat b) { return vminq_f32(a, b); }
inline vfloat vfma(vfloat a, vfloat b, vfloat acc) {
  return vfmaq_f32(acc, a, b);
}
inline float fma1(float a, float b, float acc) {
  return __builtin_fmaf(a, b, acc);  // single fmadd instruction on aarch64
}
inline vfloat vround_nearest(vfloat v) { return vrndnq_f32(v); }
inline vfloat vpow2i(vfloat n) {
  const int32x4_t e = vaddq_s32(vcvtnq_s32_f32(n), vdupq_n_s32(127));
  return vreinterpretq_f32_s32(vshlq_n_s32(e, 23));
}

/// Fixed-order lane reductions (pairwise, same shape as the AVX2 target).
inline float vreduce_add(vfloat v) {
  const float32x2_t s = vadd_f32(vget_low_f32(v), vget_high_f32(v));
  return vget_lane_f32(vpadd_f32(s, s), 0);
}
inline float vreduce_max(vfloat v) { return vmaxvq_f32(v); }

// ---- Q8 block codec --------------------------------------------------------
// Bitwise-identical to detail::q8_* on finite inputs: vmaxvq is an exact
// max reduction, vcvtnq_s32_f32 is round-nearest-even (the same rounding
// nearbyintf performs under the default mode), int8 widening and the
// saturating narrows are exact for values the clamp bounds to [-127, 127].
// Partial tail blocks delegate to the scalar reference.

inline void q8_encode(const float* x, std::int8_t* q, float* scales,
                      std::size_t n) {
  const std::size_t nfull = n - n % quant::kQ8Block;
  const float32x4_t lo = vdupq_n_f32(-127.0f);
  const float32x4_t hi = vdupq_n_f32(127.0f);
  for (std::size_t b0 = 0; b0 < nfull; b0 += quant::kQ8Block) {
    float32x4_t vmaxabs = vabsq_f32(vld1q_f32(x + b0));
    for (std::size_t i = 4; i < quant::kQ8Block; i += 4) {
      vmaxabs = vmaxq_f32(vmaxabs, vabsq_f32(vld1q_f32(x + b0 + i)));
    }
    const float amax = vmaxvq_f32(vmaxabs);
    float* scale = scales + b0 / quant::kQ8Block;
    if (!(amax >= quant::kQ8TinyAmax)) {
      *scale = 0.0f;
      std::memset(q + b0, 0, quant::kQ8Block);
      continue;
    }
    *scale = amax / 127.0f;
    const float32x4_t vis = vdupq_n_f32(127.0f / amax);
    for (std::size_t i = 0; i < quant::kQ8Block; i += 16) {
      int16x8_t half[2];
      for (std::size_t h = 0; h < 2; ++h) {
        const float32x4_t t0 = vminq_f32(
            vmaxq_f32(vmulq_f32(vld1q_f32(x + b0 + i + 8 * h), vis), lo), hi);
        const float32x4_t t1 = vminq_f32(
            vmaxq_f32(vmulq_f32(vld1q_f32(x + b0 + i + 8 * h + 4), vis), lo),
            hi);
        half[h] = vcombine_s16(vqmovn_s32(vcvtnq_s32_f32(t0)),
                               vqmovn_s32(vcvtnq_s32_f32(t1)));
      }
      vst1q_s8(q + b0 + i, vcombine_s8(vqmovn_s16(half[0]),
                                       vqmovn_s16(half[1])));
    }
  }
  if (nfull != n) {
    detail::q8_encode(x + nfull, q + nfull, scales + nfull / quant::kQ8Block,
                      n - nfull);
  }
}

inline void q8_decode(const std::int8_t* q, const float* scales, float* out,
                      std::size_t n) {
  const std::size_t nfull = n - n % quant::kQ8Block;
  for (std::size_t b0 = 0; b0 < nfull; b0 += quant::kQ8Block) {
    const float32x4_t vs = vdupq_n_f32(scales[b0 / quant::kQ8Block]);
    for (std::size_t i = 0; i < quant::kQ8Block; i += 8) {
      const int16x8_t w = vmovl_s8(vld1_s8(q + b0 + i));
      const float32x4_t q0 = vcvtq_f32_s32(vmovl_s16(vget_low_s16(w)));
      const float32x4_t q1 = vcvtq_f32_s32(vmovl_s16(vget_high_s16(w)));
      vst1q_f32(out + b0 + i, vmulq_f32(vs, q0));
      vst1q_f32(out + b0 + i + 4, vmulq_f32(vs, q1));
    }
  }
  if (nfull != n) {
    detail::q8_decode(q + nfull, scales + nfull / quant::kQ8Block, out + nfull,
                      n - nfull);
  }
}

inline void q8_axpy(float* y, float s, const std::int8_t* q,
                    const float* scales, std::size_t n) {
  const std::size_t nfull = n - n % quant::kQ8Block;
  for (std::size_t b0 = 0; b0 < nfull; b0 += quant::kQ8Block) {
    const float32x4_t vc = vdupq_n_f32(s * scales[b0 / quant::kQ8Block]);
    for (std::size_t i = 0; i < quant::kQ8Block; i += 8) {
      const int16x8_t w = vmovl_s8(vld1_s8(q + b0 + i));
      const float32x4_t q0 = vcvtq_f32_s32(vmovl_s16(vget_low_s16(w)));
      const float32x4_t q1 = vcvtq_f32_s32(vmovl_s16(vget_high_s16(w)));
      // Unfused mul-then-add, matching the scalar reference bitwise.
      vst1q_f32(y + b0 + i,
                vaddq_f32(vld1q_f32(y + b0 + i), vmulq_f32(vc, q0)));
      vst1q_f32(y + b0 + i + 4,
                vaddq_f32(vld1q_f32(y + b0 + i + 4), vmulq_f32(vc, q1)));
    }
  }
  if (nfull != n) {
    detail::q8_axpy(y + nfull, s, q + nfull, scales + nfull / quant::kQ8Block,
                    n - nfull);
  }
}

#define REFFIL_KERN_ISA_NAME "neon"
#include "reffil/tensor/kernels_simd.inl"
#undef REFFIL_KERN_ISA_NAME

}  // namespace neon

const Kernels* neon_table() { return &neon::kTable; }

}  // namespace reffil::tensor::kern

#else  // !aarch64

namespace reffil::tensor::kern {
const Kernels* neon_table() { return nullptr; }
}  // namespace reffil::tensor::kern

#endif
