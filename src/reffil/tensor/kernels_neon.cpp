// "neon" dispatch target: 4-lane FMA kernels for aarch64. NEON (ASIMD) is
// baseline on aarch64, so unlike the AVX2 TU this one needs no special
// compile flags — the guard below simply compiles it out on other
// architectures. armv7 NEON is intentionally excluded: the kernels rely on
// aarch64-only round/reduce instructions (vrndnq/vmaxvq/vcvtnq) and armv7
// NEON is not fully IEEE-compliant (flush-to-zero), which would break the
// per-target determinism contract.

#include "reffil/tensor/kernels_dispatch.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "reffil/tensor/kernels.hpp"

namespace reffil::tensor::kern {
namespace neon {

using vfloat = float32x4_t;
inline constexpr std::size_t kLanes = 4;

inline vfloat vload(const float* p) { return vld1q_f32(p); }
inline void vstore(float* p, vfloat v) { vst1q_f32(p, v); }
inline vfloat vbroadcast(float x) { return vdupq_n_f32(x); }
inline vfloat vadd(vfloat a, vfloat b) { return vaddq_f32(a, b); }
inline vfloat vsub(vfloat a, vfloat b) { return vsubq_f32(a, b); }
inline vfloat vmul(vfloat a, vfloat b) { return vmulq_f32(a, b); }
// vmaxq/vminq propagate NaN lanewise (default NaN behavior on aarch64).
inline vfloat vmax(vfloat a, vfloat b) { return vmaxq_f32(a, b); }
inline vfloat vmin(vfloat a, vfloat b) { return vminq_f32(a, b); }
inline vfloat vfma(vfloat a, vfloat b, vfloat acc) {
  return vfmaq_f32(acc, a, b);
}
inline float fma1(float a, float b, float acc) {
  return __builtin_fmaf(a, b, acc);  // single fmadd instruction on aarch64
}
inline vfloat vround_nearest(vfloat v) { return vrndnq_f32(v); }
inline vfloat vpow2i(vfloat n) {
  const int32x4_t e = vaddq_s32(vcvtnq_s32_f32(n), vdupq_n_s32(127));
  return vreinterpretq_f32_s32(vshlq_n_s32(e, 23));
}

/// Fixed-order lane reductions (pairwise, same shape as the AVX2 target).
inline float vreduce_add(vfloat v) {
  const float32x2_t s = vadd_f32(vget_low_f32(v), vget_high_f32(v));
  return vget_lane_f32(vpadd_f32(s, s), 0);
}
inline float vreduce_max(vfloat v) { return vmaxvq_f32(v); }

#define REFFIL_KERN_ISA_NAME "neon"
#include "reffil/tensor/kernels_simd.inl"
#undef REFFIL_KERN_ISA_NAME

}  // namespace neon

const Kernels* neon_table() { return &neon::kTable; }

}  // namespace reffil::tensor::kern

#else  // !aarch64

namespace reffil::tensor::kern {
const Kernels* neon_table() { return nullptr; }
}  // namespace reffil::tensor::kern

#endif
