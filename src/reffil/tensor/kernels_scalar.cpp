// "scalar" dispatch target: the portable reference kernels, compiled with
// the project's baseline flags only. This target exists on every build and
// is the bitwise-determinism anchor — the cross-ISA equivalence suite
// measures every other target against it, and REFFIL_ISA=scalar pins a run
// to it for reproducibility across heterogeneous fleets.

#include "reffil/tensor/kernels.hpp"
#include "reffil/tensor/kernels_dispatch.hpp"
#include "reffil/tensor/quant.hpp"

namespace reffil::tensor::kern {

namespace {

constexpr Kernels kScalarTable = {
    "scalar",
    &detail::matmul_rows_nn,
    &detail::matmul_rows_nt,
    &detail::matmul_rows_tn,
    &detail::add_span,
    &detail::axpy_span,
    &detail::scale_span,
    &detail::softmax_rows,
    &detail::log_softmax_rows,
    &detail::im2col,
    &detail::col2im,
    &detail::q8_encode,
    &detail::q8_decode,
    &detail::q8_axpy,
};

}  // namespace

const Kernels* scalar_table() { return &kScalarTable; }

}  // namespace reffil::tensor::kern

// Conv2d lowering — the single shared definition every dispatch table points
// at (see the declaration comment in kernels.hpp for why it must live
// out-of-line in exactly one baseline-flags TU).
namespace reffil::tensor::detail {

void im2col(const float* in, float* col, const kern::Conv2dGeom& g) {
  const std::size_t hw = g.hout * g.wout;
  for (std::size_t c = 0; c < g.cin; ++c) {
    for (std::size_t ki = 0; ki < g.kh; ++ki) {
      for (std::size_t kj = 0; kj < g.kw; ++kj) {
        const std::size_t row = (c * g.kh + ki) * g.kw + kj;
        float* dst = col + row * hw;
        for (std::size_t oi = 0; oi < g.hout; ++oi) {
          const std::ptrdiff_t ii =
              static_cast<std::ptrdiff_t>(oi * g.stride + ki) -
              static_cast<std::ptrdiff_t>(g.pad);
          float* drow = dst + oi * g.wout;
          if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(g.h)) {
            std::fill(drow, drow + g.wout, 0.0f);
            continue;
          }
          const float* irow =
              in + (c * g.h + static_cast<std::size_t>(ii)) * g.w;
          if (g.stride == 1) {
            // jj = oj + kj - pad stays in [0, w) for oj in [lo, hi).
            const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(kj) -
                                       static_cast<std::ptrdiff_t>(g.pad);
            const std::size_t lo = std::min(
                g.wout, static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, -off)));
            const std::size_t hi = static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
                static_cast<std::ptrdiff_t>(g.w) - off, 0,
                static_cast<std::ptrdiff_t>(g.wout)));
            std::fill(drow, drow + lo, 0.0f);
            if (hi > lo) {
              std::memcpy(drow + lo, irow + static_cast<std::size_t>(off + static_cast<std::ptrdiff_t>(lo)),
                          (hi - lo) * sizeof(float));
            }
            std::fill(drow + std::max(hi, lo), drow + g.wout, 0.0f);
          } else {
            for (std::size_t oj = 0; oj < g.wout; ++oj) {
              const std::ptrdiff_t jj =
                  static_cast<std::ptrdiff_t>(oj * g.stride + kj) -
                  static_cast<std::ptrdiff_t>(g.pad);
              drow[oj] = (jj >= 0 && jj < static_cast<std::ptrdiff_t>(g.w))
                             ? irow[static_cast<std::size_t>(jj)]
                             : 0.0f;
            }
          }
        }
      }
    }
  }
}

void col2im(const float* dcol, float* din, const kern::Conv2dGeom& g) {
  const std::size_t hw = g.hout * g.wout;
  for (std::size_t c = 0; c < g.cin; ++c) {
    for (std::size_t ki = 0; ki < g.kh; ++ki) {
      for (std::size_t kj = 0; kj < g.kw; ++kj) {
        const std::size_t row = (c * g.kh + ki) * g.kw + kj;
        const float* src = dcol + row * hw;
        for (std::size_t oi = 0; oi < g.hout; ++oi) {
          const std::ptrdiff_t ii =
              static_cast<std::ptrdiff_t>(oi * g.stride + ki) -
              static_cast<std::ptrdiff_t>(g.pad);
          if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(g.h)) continue;
          const float* srow = src + oi * g.wout;
          float* irow = din + (c * g.h + static_cast<std::size_t>(ii)) * g.w;
          if (g.stride == 1) {
            const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(kj) -
                                       static_cast<std::ptrdiff_t>(g.pad);
            const std::size_t lo = static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, -off));
            const std::size_t hi = static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
                static_cast<std::ptrdiff_t>(g.w) - off, 0,
                static_cast<std::ptrdiff_t>(g.wout)));
            for (std::size_t oj = lo; oj < hi; ++oj) {
              irow[static_cast<std::size_t>(off + static_cast<std::ptrdiff_t>(oj))] += srow[oj];
            }
          } else {
            for (std::size_t oj = 0; oj < g.wout; ++oj) {
              const std::ptrdiff_t jj =
                  static_cast<std::ptrdiff_t>(oj * g.stride + kj) -
                  static_cast<std::ptrdiff_t>(g.pad);
              if (jj >= 0 && jj < static_cast<std::ptrdiff_t>(g.w)) {
                irow[static_cast<std::size_t>(jj)] += srow[oj];
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace reffil::tensor::detail
