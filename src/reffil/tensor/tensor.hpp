// Dense row-major float tensor.
//
// This is the numeric substrate for the whole library: a contiguous
// `std::vector<float>` plus a shape. It is a value type (copyable, movable,
// equality-comparable) following the Core Guidelines' preference for regular
// types; all mutation goes through checked accessors or the op library in
// ops.hpp.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

#include "reffil/util/byte_buffer.hpp"
#include "reffil/util/error.hpp"

namespace reffil::tensor {

using Shape = std::vector<std::size_t>;

/// Number of elements implied by a shape (1 for rank-0).
std::size_t shape_numel(const Shape& shape);

/// "[2, 3, 4]" — for error messages.
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  /// Rank-0 scalar zero.
  Tensor() : shape_{}, data_(1, 0.0f) {}

  /// Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

  /// Tensor with explicit contents; data.size() must equal numel(shape).
  Tensor(Shape shape, std::vector<float> data);

  /// Scalar constructor.
  static Tensor scalar(float value);

  /// 1-D tensor from values.
  static Tensor vector(std::vector<float> values);

  /// 2-D tensor from nested initializer list (rows must be equal length).
  static Tensor matrix(std::initializer_list<std::initializer_list<float>> rows);

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }
  std::size_t dim(std::size_t axis) const;

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }
  const float* begin() const { return data_.data(); }
  const float* end() const { return data_.data() + data_.size(); }
  float* begin() { return data_.data(); }
  float* end() { return data_.data() + data_.size(); }

  /// Flat element access (bounds-checked).
  float at(std::size_t flat_index) const;
  float& at(std::size_t flat_index);

  /// 2-D element access (bounds-checked; requires rank 2).
  float at2(std::size_t row, std::size_t col) const;
  float& at2(std::size_t row, std::size_t col);

  /// Value of a rank-0 or single-element tensor.
  float item() const;

  /// Same data, new shape (numel must match). The rvalue overload moves the
  /// storage instead of copying it, so `std::move(t).reshaped(...)` is free.
  Tensor reshaped(Shape new_shape) const&;
  Tensor reshaped(Shape new_shape) &&;

  /// Exact equality of shape and contents.
  bool operator==(const Tensor& other) const = default;

  /// True if shapes match and all elements are within atol of each other.
  bool all_close(const Tensor& other, float atol = 1e-5f) const;

  void serialize(util::ByteWriter& writer) const;
  static Tensor deserialize(util::ByteReader& reader);

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace reffil::tensor
