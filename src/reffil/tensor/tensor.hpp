// Dense row-major float tensor.
//
// This is the numeric substrate for the whole library: a contiguous float
// buffer plus a shape. It is a value type (copyable, movable,
// equality-comparable) following the Core Guidelines' preference for regular
// types; all mutation goes through checked accessors or the op library in
// ops.hpp.
//
// Storage comes in two modes:
//   * owning — the default: elements live in a `std::vector<float>` member.
//   * view   — `Tensor::view(ptr, shape)` borrows caller-managed storage
//     (a pool buffer or a graph-replay arena). A view never allocates, never
//     frees, and must not outlive the borrowed buffer. Copying a view (or a
//     const& reshape of one) produces a deep owning copy, so views cannot
//     leak borrowed pointers through value semantics; moving a view transfers
//     the borrow. Equality always compares shape + elements, never storage
//     identity.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "reffil/util/byte_buffer.hpp"
#include "reffil/util/error.hpp"

namespace reffil::tensor {

using Shape = std::vector<std::size_t>;

/// Number of elements implied by a shape (1 for rank-0).
std::size_t shape_numel(const Shape& shape);

/// "[2, 3, 4]" — for error messages.
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  /// Rank-0 scalar zero.
  Tensor() : shape_{}, data_(1, 0.0f) {}

  /// Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

  /// Tensor with explicit contents; data.size() must equal numel(shape).
  Tensor(Shape shape, std::vector<float> data);

  /// Non-owning view over `data[0 .. numel(shape))`. The caller keeps the
  /// buffer alive for the view's lifetime; contents are read/written in
  /// place. `data` may be null only when the shape has zero elements.
  static Tensor view(float* data, Shape shape);

  /// Scalar constructor.
  static Tensor scalar(float value);

  /// 1-D tensor from values.
  static Tensor vector(std::vector<float> values);

  /// 2-D tensor from nested initializer list (rows must be equal length).
  static Tensor matrix(std::initializer_list<std::initializer_list<float>> rows);

  // Copies deep-copy views into owning tensors; moves transfer the borrow.
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor() = default;

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return view_ != nullptr ? view_numel_ : data_.size(); }
  std::size_t dim(std::size_t axis) const;

  /// True when the storage is borrowed (arena / pool buffer).
  bool is_view() const { return view_ != nullptr; }

  /// Owning storage accessors. Throw on views — a view's buffer belongs to
  /// its arena/pool, so vector-level operations on it are always a bug; use
  /// begin()/end() for element access instead.
  const std::vector<float>& data() const;
  std::vector<float>& data();

  const float* begin() const { return view_ != nullptr ? view_ : data_.data(); }
  const float* end() const { return begin() + numel(); }
  float* begin() { return view_ != nullptr ? view_ : data_.data(); }
  float* end() { return begin() + numel(); }

  /// Flat element access (bounds-checked).
  float at(std::size_t flat_index) const;
  float& at(std::size_t flat_index);

  /// 2-D element access (bounds-checked; requires rank 2).
  float at2(std::size_t row, std::size_t col) const;
  float& at2(std::size_t row, std::size_t col);

  /// Value of a rank-0 or single-element tensor.
  float item() const;

  /// Same data, new shape (numel must match). The rvalue overload moves the
  /// storage instead of copying it, so `std::move(t).reshaped(...)` is free
  /// for owning tensors; reshaping a view always yields an owning copy.
  Tensor reshaped(Shape new_shape) const&;
  Tensor reshaped(Shape new_shape) &&;

  /// Exact equality of shape and contents (storage mode is irrelevant).
  bool operator==(const Tensor& other) const;
  bool operator!=(const Tensor& other) const { return !(*this == other); }

  /// True if shapes match and all elements are within atol of each other.
  bool all_close(const Tensor& other, float atol = 1e-5f) const;

  void serialize(util::ByteWriter& writer) const;
  static Tensor deserialize(util::ByteReader& reader);

 private:
  Shape shape_;
  std::vector<float> data_;
  float* view_ = nullptr;        ///< non-null => borrowed storage
  std::size_t view_numel_ = 0;
};

}  // namespace reffil::tensor
