#include "reffil/tensor/pool.hpp"

#include <algorithm>
#include <new>
#include <utility>
#include <vector>

#include "reffil/util/obs.hpp"
#include "reffil/util/prof.hpp"

namespace reffil::tensor::pool {

namespace {

// 64 size classes cover every representable capacity; in practice training
// shapes live in classes ~4..22. Per-thread retention is capped so a burst
// of huge temporaries cannot pin memory forever, and buffers above the cap
// are never pooled at all.
constexpr std::size_t kBucketCount = 64;
constexpr std::size_t kMaxPooledFloats = std::size_t{1} << 24;    // 64 MiB
constexpr std::size_t kMaxRetainedFloats = std::size_t{1} << 23;  // 32 MiB

/// A raw allocation: `capacity` floats at `data`. Raw (not std::vector) so a
/// miss can hand back uninitialized memory — vector cannot represent
/// "allocated but unconstructed" contents.
struct Buffer {
  float* data = nullptr;
  std::size_t capacity = 0;
};

struct ThreadCache {
  std::vector<Buffer> buckets[kBucketCount];
  std::size_t retained_floats = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  ~ThreadCache() {
    for (auto& bucket : buckets) {
      for (Buffer& b : bucket) ::operator delete(b.data);
    }
  }
};

ThreadCache& cache() {
  thread_local ThreadCache t_cache;
  return t_cache;
}

std::size_t floor_log2(std::size_t v) {
  std::size_t b = 0;
  while (v >>= 1) ++b;
  return b;
}

/// Smallest bucket whose buffers are guaranteed to hold n floats: buffers in
/// bucket b have capacity in [2^b, 2^(b+1)), so requests look in
/// ceil(log2(n)).
std::size_t acquire_bucket(std::size_t n) {
  const std::size_t b = floor_log2(n);
  return ((std::size_t{1} << b) == n) ? b : b + 1;
}

void count_metrics(bool hit, std::size_t n) {
  if (obs::prof::enabled()) {
    // Scratch reuse shows up on the op timeline: a run of pool.miss instants
    // inside a hot span means the pool is being bypassed there.
    obs::prof::emit_instant(hit ? "pool.hit" : "pool.miss", n * sizeof(float));
  }
  if (!obs::metrics_enabled()) return;
  // Registry references are stable for the process lifetime (obs.hpp), so
  // the mutex-guarded lookup happens once.
  static obs::Counter& hits = obs::counter("tensor.pool.hit");
  static obs::Counter& misses = obs::counter("tensor.pool.miss");
  static obs::Counter& bytes = obs::counter("tensor.pool.bytes");
  if (hit) {
    hits.add(1);
    bytes.add(n * sizeof(float));
  } else {
    misses.add(1);
  }
}

Buffer acquire_buffer(std::size_t n, bool zero) {
  if (n == 0) return {};
  ThreadCache& c = cache();
  if (n <= kMaxPooledFloats) {
    auto& stack = c.buckets[acquire_bucket(n)];
    if (!stack.empty()) {
      Buffer buf = stack.back();
      stack.pop_back();
      c.retained_floats -= buf.capacity;
      ++c.hits;
      count_metrics(/*hit=*/true, n);
      // Capacity >= n by the bucket invariant; contents beyond the zeroed
      // prefix are whatever the previous borrow left.
      if (zero) std::fill(buf.data, buf.data + n, 0.0f);
      return buf;
    }
  }
  ++c.misses;
  count_metrics(/*hit=*/false, n);
  // Round the fresh allocation up to its acquire bucket's size so release()
  // parks it exactly where the next same-size request looks. Capacity `n`
  // itself would land in floor_log2(n) — one bucket below a non-power-of-two
  // request's probe — and never be found again, turning a steady-state
  // workload into a miss on every borrow.
  const std::size_t capacity =
      n <= kMaxPooledFloats ? (std::size_t{1} << acquire_bucket(n)) : n;
  Buffer buf{static_cast<float*>(::operator new(capacity * sizeof(float))),
             capacity};
  // The point of zero=false: a miss hands the allocation back untouched, so
  // callers about to overwrite every element never pay a fill pass.
  if (zero) std::fill(buf.data, buf.data + n, 0.0f);
  return buf;
}

void release_buffer(Buffer buf) {
  if (buf.data == nullptr) return;
  if (buf.capacity == 0 || buf.capacity > kMaxPooledFloats) {
    ::operator delete(buf.data);
    return;
  }
  ThreadCache& c = cache();
  if (c.retained_floats + buf.capacity > kMaxRetainedFloats) {
    ::operator delete(buf.data);  // drop: stay bounded
    return;
  }
  c.retained_floats += buf.capacity;
  c.buckets[floor_log2(buf.capacity)].push_back(buf);
}

}  // namespace

Scratch::Scratch(Shape shape, bool zero) {
  const std::size_t n = shape_numel(shape);
  const Buffer buf = acquire_buffer(n, zero);
  buffer_ = buf.data;
  capacity_ = buf.capacity;
  if (n == 0) {
    tensor_ = Tensor(std::move(shape));  // owning empty; nothing to pool
  } else {
    tensor_ = Tensor::view(buffer_, std::move(shape));
  }
}

Scratch::~Scratch() {
  // The buffer's lifetime is tied to the Scratch, not to tensor_: even if
  // user code moved the view out (or assigned over tensor_), the underlying
  // allocation is returned exactly once, and never as an empty husk.
  release_buffer(Buffer{buffer_, capacity_});
}

Scratch::Scratch(Scratch&& other) noexcept
    : buffer_(other.buffer_),
      capacity_(other.capacity_),
      tensor_(std::move(other.tensor_)) {
  other.buffer_ = nullptr;
  other.capacity_ = 0;
}

ThreadStats thread_stats() {
  const ThreadCache& c = cache();
  return {c.hits, c.misses, c.retained_floats * sizeof(float)};
}

void clear_thread_cache() {
  ThreadCache& c = cache();
  for (auto& bucket : c.buckets) {
    for (Buffer& b : bucket) ::operator delete(b.data);
    bucket.clear();
  }
  c.retained_floats = 0;
}

}  // namespace reffil::tensor::pool
