#include "reffil/tensor/pool.hpp"

#include <utility>
#include <vector>

#include "reffil/util/obs.hpp"
#include "reffil/util/prof.hpp"

namespace reffil::tensor::pool {

namespace {

// 64 size classes cover every representable capacity; in practice training
// shapes live in classes ~4..22. Per-thread retention is capped so a burst
// of huge temporaries cannot pin memory forever, and buffers above the cap
// are never pooled at all.
constexpr std::size_t kBucketCount = 64;
constexpr std::size_t kMaxPooledFloats = std::size_t{1} << 24;    // 64 MiB
constexpr std::size_t kMaxRetainedFloats = std::size_t{1} << 23;  // 32 MiB

struct ThreadCache {
  std::vector<std::vector<float>> buckets[kBucketCount];
  std::size_t retained_floats = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

ThreadCache& cache() {
  thread_local ThreadCache t_cache;
  return t_cache;
}

std::size_t floor_log2(std::size_t v) {
  std::size_t b = 0;
  while (v >>= 1) ++b;
  return b;
}

/// Smallest bucket whose buffers are guaranteed to hold n floats: buffers in
/// bucket b have capacity in [2^b, 2^(b+1)), so requests look in
/// ceil(log2(n)).
std::size_t acquire_bucket(std::size_t n) {
  const std::size_t b = floor_log2(n);
  return ((std::size_t{1} << b) == n) ? b : b + 1;
}

void count_metrics(bool hit, std::size_t n) {
  if (obs::prof::enabled()) {
    // Scratch reuse shows up on the op timeline: a run of pool.miss instants
    // inside a hot span means the pool is being bypassed there.
    obs::prof::emit_instant(hit ? "pool.hit" : "pool.miss", n * sizeof(float));
  }
  if (!obs::metrics_enabled()) return;
  // Registry references are stable for the process lifetime (obs.hpp), so
  // the mutex-guarded lookup happens once.
  static obs::Counter& hits = obs::counter("tensor.pool.hit");
  static obs::Counter& misses = obs::counter("tensor.pool.miss");
  static obs::Counter& bytes = obs::counter("tensor.pool.bytes");
  if (hit) {
    hits.add(1);
    bytes.add(n * sizeof(float));
  } else {
    misses.add(1);
  }
}

std::vector<float> acquire_buffer(std::size_t n, bool zero) {
  if (n == 0) return {};
  ThreadCache& c = cache();
  if (n <= kMaxPooledFloats) {
    auto& stack = c.buckets[acquire_bucket(n)];
    if (!stack.empty()) {
      std::vector<float> buf = std::move(stack.back());
      stack.pop_back();
      c.retained_floats -= buf.capacity();
      ++c.hits;
      count_metrics(/*hit=*/true, n);
      // Capacity >= n by the bucket invariant, so neither call reallocates.
      if (zero) {
        buf.assign(n, 0.0f);
      } else {
        buf.resize(n);
      }
      return buf;
    }
  }
  ++c.misses;
  count_metrics(/*hit=*/false, n);
  return std::vector<float>(n, 0.0f);
}

void release_buffer(std::vector<float>&& buf) {
  const std::size_t cap = buf.capacity();
  if (cap == 0 || cap > kMaxPooledFloats) return;
  ThreadCache& c = cache();
  if (c.retained_floats + cap > kMaxRetainedFloats) return;  // drop: stay bounded
  c.retained_floats += cap;
  c.buckets[floor_log2(cap)].push_back(std::move(buf));
}

}  // namespace

Scratch::Scratch(Shape shape, bool zero)
    : tensor_([&] {
        const std::size_t n = shape_numel(shape);
        return Tensor(std::move(shape), acquire_buffer(n, zero));
      }()) {}

Scratch::~Scratch() {
  if (owns_) release_buffer(std::move(tensor_.data()));
}

Scratch::Scratch(Scratch&& other) noexcept
    : tensor_(std::move(other.tensor_)), owns_(other.owns_) {
  other.owns_ = false;
}

ThreadStats thread_stats() {
  const ThreadCache& c = cache();
  return {c.hits, c.misses, c.retained_floats * sizeof(float)};
}

void clear_thread_cache() {
  ThreadCache& c = cache();
  for (auto& bucket : c.buckets) bucket.clear();
  c.retained_floats = 0;
}

}  // namespace reffil::tensor::pool
