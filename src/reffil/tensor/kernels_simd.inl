// Shared SIMD kernel body (library-internal).
//
// Included by kernels_avx2.cpp and kernels_neon.cpp *inside* their target
// namespace, after the including TU has defined the wrapper primitives:
//
//   vfloat                          native vector of kLanes floats
//   kLanes                          lane count (8 for AVX2, 4 for NEON)
//   vload / vstore                  unaligned load/store
//   vbroadcast(float)               splat
//   vadd / vsub / vmul / vmin / vmax  lanewise IEEE ops
//   vfma(a, b, acc)                 fused acc + a*b (single rounding)
//   fma1(a, b, acc)                 scalar fused madd, same rounding as vfma
//   vreduce_add / vreduce_max       lane reduction (fixed lane order)
//   vround_nearest                  lanewise round-to-nearest-even
//   vpow2i(n)                       2^int(n) via exponent-field construction
//   q8_encode / q8_decode / q8_axpy target implementations of the Q8 block
//                                   codec (quant.hpp) — defined before this
//                                   include; must be bitwise-identical to
//                                   detail::q8_* on finite inputs
//   REFFIL_KERN_ISA_NAME            the table name string
//
// Determinism: per output element the matmul kernels perform exactly one
// fused madd per k, k ascending, regardless of which register block, vector
// width, or scalar tail the element lands in — so any row partition (the
// parallel layer) and any blocking reshuffle leaves results bitwise
// unchanged *within this target*. Elementwise kernels use unfused
// mul-then-add so they are bitwise identical to the scalar target and
// partition-invariant. Softmax uses the polynomial exp below (~2 ulp),
// which is where this target diverges from scalar libm — bounded by the
// cross-ISA 1e-5 equivalence suite.

// ---- register-blocked matmul micro-kernel ----------------------------------

/// OUT[di, dj] += sum_{dk < kb} A(di, dk) * B(dk, dj) for di < ib, dj < jb,
/// with A(di, dk) = a[di*a_is + dk*a_ks], B(dk, dj) = b[dk*b_ks + dj], and
/// OUT(di, dj) = out[di*o_is + dj]. Rows are processed four at a time so one
/// B load feeds four accumulator sets; j is blocked two vectors wide to hide
/// FMA latency. Accumulators start from the (zeroed or partially summed)
/// output and are stored back once per (i-block, j-block, k-tile).
inline void accum_block(const float* a, std::size_t a_is, std::size_t a_ks,
                        const float* b, std::size_t b_ks, float* out,
                        std::size_t o_is, std::size_t ib, std::size_t jb,
                        std::size_t kb) {
  std::size_t di = 0;
  for (; di + 4 <= ib; di += 4) {
    const float* a0 = a + (di + 0) * a_is;
    const float* a1 = a + (di + 1) * a_is;
    const float* a2 = a + (di + 2) * a_is;
    const float* a3 = a + (di + 3) * a_is;
    float* o0 = out + (di + 0) * o_is;
    float* o1 = out + (di + 1) * o_is;
    float* o2 = out + (di + 2) * o_is;
    float* o3 = out + (di + 3) * o_is;
    std::size_t dj = 0;
    for (; dj + 2 * kLanes <= jb; dj += 2 * kLanes) {
      vfloat c00 = vload(o0 + dj), c01 = vload(o0 + dj + kLanes);
      vfloat c10 = vload(o1 + dj), c11 = vload(o1 + dj + kLanes);
      vfloat c20 = vload(o2 + dj), c21 = vload(o2 + dj + kLanes);
      vfloat c30 = vload(o3 + dj), c31 = vload(o3 + dj + kLanes);
      const float* bp = b + dj;
      for (std::size_t dk = 0; dk < kb; ++dk) {
        const vfloat b0 = vload(bp + dk * b_ks);
        const vfloat b1 = vload(bp + dk * b_ks + kLanes);
        const vfloat va0 = vbroadcast(a0[dk * a_ks]);
        c00 = vfma(va0, b0, c00);
        c01 = vfma(va0, b1, c01);
        const vfloat va1 = vbroadcast(a1[dk * a_ks]);
        c10 = vfma(va1, b0, c10);
        c11 = vfma(va1, b1, c11);
        const vfloat va2 = vbroadcast(a2[dk * a_ks]);
        c20 = vfma(va2, b0, c20);
        c21 = vfma(va2, b1, c21);
        const vfloat va3 = vbroadcast(a3[dk * a_ks]);
        c30 = vfma(va3, b0, c30);
        c31 = vfma(va3, b1, c31);
      }
      vstore(o0 + dj, c00);
      vstore(o0 + dj + kLanes, c01);
      vstore(o1 + dj, c10);
      vstore(o1 + dj + kLanes, c11);
      vstore(o2 + dj, c20);
      vstore(o2 + dj + kLanes, c21);
      vstore(o3 + dj, c30);
      vstore(o3 + dj + kLanes, c31);
    }
    for (; dj + kLanes <= jb; dj += kLanes) {
      vfloat c0 = vload(o0 + dj);
      vfloat c1 = vload(o1 + dj);
      vfloat c2 = vload(o2 + dj);
      vfloat c3 = vload(o3 + dj);
      const float* bp = b + dj;
      for (std::size_t dk = 0; dk < kb; ++dk) {
        const vfloat bv = vload(bp + dk * b_ks);
        c0 = vfma(vbroadcast(a0[dk * a_ks]), bv, c0);
        c1 = vfma(vbroadcast(a1[dk * a_ks]), bv, c1);
        c2 = vfma(vbroadcast(a2[dk * a_ks]), bv, c2);
        c3 = vfma(vbroadcast(a3[dk * a_ks]), bv, c3);
      }
      vstore(o0 + dj, c0);
      vstore(o1 + dj, c1);
      vstore(o2 + dj, c2);
      vstore(o3 + dj, c3);
    }
    for (; dj < jb; ++dj) {
      float c0 = o0[dj], c1 = o1[dj], c2 = o2[dj], c3 = o3[dj];
      const float* bp = b + dj;
      for (std::size_t dk = 0; dk < kb; ++dk) {
        const float bv = bp[dk * b_ks];
        c0 = fma1(a0[dk * a_ks], bv, c0);
        c1 = fma1(a1[dk * a_ks], bv, c1);
        c2 = fma1(a2[dk * a_ks], bv, c2);
        c3 = fma1(a3[dk * a_ks], bv, c3);
      }
      o0[dj] = c0;
      o1[dj] = c1;
      o2[dj] = c2;
      o3[dj] = c3;
    }
  }
  for (; di < ib; ++di) {
    const float* ar = a + di * a_is;
    float* orow = out + di * o_is;
    std::size_t dj = 0;
    for (; dj + 2 * kLanes <= jb; dj += 2 * kLanes) {
      vfloat c0 = vload(orow + dj), c1 = vload(orow + dj + kLanes);
      const float* bp = b + dj;
      for (std::size_t dk = 0; dk < kb; ++dk) {
        const vfloat va = vbroadcast(ar[dk * a_ks]);
        c0 = vfma(va, vload(bp + dk * b_ks), c0);
        c1 = vfma(va, vload(bp + dk * b_ks + kLanes), c1);
      }
      vstore(orow + dj, c0);
      vstore(orow + dj + kLanes, c1);
    }
    for (; dj + kLanes <= jb; dj += kLanes) {
      vfloat c = vload(orow + dj);
      const float* bp = b + dj;
      for (std::size_t dk = 0; dk < kb; ++dk) {
        c = vfma(vbroadcast(ar[dk * a_ks]), vload(bp + dk * b_ks), c);
      }
      vstore(orow + dj, c);
    }
    for (; dj < jb; ++dj) {
      float c = orow[dj];
      const float* bp = b + dj;
      for (std::size_t dk = 0; dk < kb; ++dk) {
        c = fma1(ar[dk * a_ks], bp[dk * b_ks], c);
      }
      orow[dj] = c;
    }
  }
}

// ---- matmul row kernels (same cache tiling as the scalar target) -----------

inline void matmul_rows_nn(const float* a, const float* b, float* out,
                           std::size_t r0, std::size_t r1, std::size_t K,
                           std::size_t n) {
  using detail::kTileJ;
  using detail::kTileK;
  for (std::size_t j0 = 0; j0 < n; j0 += kTileJ) {
    const std::size_t j1 = std::min(n, j0 + kTileJ);
    for (std::size_t k0 = 0; k0 < K; k0 += kTileK) {
      const std::size_t k1 = std::min(K, k0 + kTileK);
      accum_block(a + r0 * K + k0, K, 1, b + k0 * n + j0, n,
                  out + r0 * n + j0, n, r1 - r0, j1 - j0, k1 - k0);
    }
  }
}

inline void matmul_rows_nt(const float* a, const float* b, float* out,
                           std::size_t r0, std::size_t r1, std::size_t K,
                           std::size_t n) {
  using detail::kTileJ;
  using detail::kTileK;
  thread_local std::vector<float> pack(kTileK * kTileJ);
  for (std::size_t j0 = 0; j0 < n; j0 += kTileJ) {
    const std::size_t j1 = std::min(n, j0 + kTileJ);
    const std::size_t jw = j1 - j0;
    for (std::size_t k0 = 0; k0 < K; k0 += kTileK) {
      const std::size_t k1 = std::min(K, k0 + kTileK);
      for (std::size_t j = j0; j < j1; ++j) {
        const float* b_row = b + j * K;
        for (std::size_t kk = k0; kk < k1; ++kk) {
          pack[(kk - k0) * jw + (j - j0)] = b_row[kk];
        }
      }
      accum_block(a + r0 * K + k0, K, 1, pack.data(), jw, out + r0 * n + j0,
                  n, r1 - r0, jw, k1 - k0);
    }
  }
}

inline void matmul_rows_tn(const float* a, const float* b, float* out,
                           std::size_t r0, std::size_t r1, std::size_t K,
                           std::size_t m, std::size_t n) {
  using detail::kTileJ;
  using detail::kTileK;
  // A(i, kk) = a[kk*m + i]: row stride 1, k stride m.
  for (std::size_t j0 = 0; j0 < n; j0 += kTileJ) {
    const std::size_t j1 = std::min(n, j0 + kTileJ);
    for (std::size_t k0 = 0; k0 < K; k0 += kTileK) {
      const std::size_t k1 = std::min(K, k0 + kTileK);
      accum_block(a + k0 * m + r0, 1, m, b + k0 * n + j0, n,
                  out + r0 * n + j0, n, r1 - r0, j1 - j0, k1 - k0);
    }
  }
}

// ---- blocked elementwise spans ---------------------------------------------
// Unfused mul-then-add: bitwise identical to the scalar target per element,
// hence partition-invariant (the block boundaries of elementwise_blocks can
// never change a result).

inline void add_span(float* y, const float* x, std::size_t lo,
                     std::size_t hi) {
  std::size_t i = lo;
  for (; i + kLanes <= hi; i += kLanes) {
    vstore(y + i, vadd(vload(y + i), vload(x + i)));
  }
  for (; i < hi; ++i) y[i] += x[i];
}

inline void axpy_span(float* y, float s, const float* x, std::size_t lo,
                      std::size_t hi) {
  const vfloat vs = vbroadcast(s);
  std::size_t i = lo;
  for (; i + kLanes <= hi; i += kLanes) {
    vstore(y + i, vadd(vload(y + i), vmul(vs, vload(x + i))));
  }
  for (; i < hi; ++i) y[i] += s * x[i];
}

inline void scale_span(float* y, float s, std::size_t lo, std::size_t hi) {
  const vfloat vs = vbroadcast(s);
  std::size_t i = lo;
  for (; i + kLanes <= hi; i += kLanes) {
    vstore(y + i, vmul(vload(y + i), vs));
  }
  for (; i < hi; ++i) y[i] *= s;
}

// ---- vectorized exp (Cephes-style, ~2 ulp) ---------------------------------
// exp(x) = 2^n * exp(r), n = round(x * log2 e), r = x - n*ln2 split in two
// parts for precision. Inputs are clamped to the finite range of float exp;
// NaN propagates (the clamp keeps NaN because vmax/vmin take it from the
// second operand / lanewise-propagate it). exp(-inf) clamps to exp(-88.38),
// which underflows to ~1e-39 — indistinguishable from 0 at the 1e-5
// cross-ISA tolerance.

inline vfloat vexp(vfloat x) {
  x = vmin(vbroadcast(88.3762626647950f),
           vmax(vbroadcast(-88.3762626647949f), x));
  const vfloat fx = vround_nearest(vmul(x, vbroadcast(1.44269504088896341f)));
  x = vsub(x, vmul(fx, vbroadcast(0.693359375f)));
  x = vsub(x, vmul(fx, vbroadcast(-2.12194440e-4f)));
  const vfloat z = vmul(x, x);
  vfloat y = vbroadcast(1.9875691500e-4f);
  y = vfma(y, x, vbroadcast(1.3981999507e-3f));
  y = vfma(y, x, vbroadcast(8.3334519073e-3f));
  y = vfma(y, x, vbroadcast(4.1665795894e-2f));
  y = vfma(y, x, vbroadcast(1.6666665459e-1f));
  y = vfma(y, x, vbroadcast(5.0000001201e-1f));
  y = vfma(y, z, x);
  y = vadd(y, vbroadcast(1.0f));
  return vmul(y, vpow2i(fx));
}

// ---- row-range softmax -----------------------------------------------------
// Same degenerate-row semantics as the scalar target (kernels.hpp): an
// all -inf row yields uniform 1/n (softmax) / -log(n) (log_softmax); NaN
// rows propagate NaN. The vector path sums exp in float lane-order (fixed,
// hence deterministic per target); row tails shorter than a vector use
// scalar libm exp — also fixed per row length, so still deterministic.

inline void softmax_rows(const float* src, float* dst, std::size_t r0,
                         std::size_t r1, std::size_t n) {
  if (n == 0) return;
  const float ninf = -std::numeric_limits<float>::infinity();
  for (std::size_t i = r0; i < r1; ++i) {
    const float* s = src + i * n;
    float* d = dst + i * n;
    float mx = ninf;
    std::size_t j = 0;
    if (n >= kLanes) {
      vfloat vm = vload(s);
      for (j = kLanes; j + kLanes <= n; j += kLanes) {
        vm = vmax(vm, vload(s + j));
      }
      mx = vreduce_max(vm);
    }
    for (; j < n; ++j) mx = std::max(mx, s[j]);
    if (mx == ninf) {
      std::fill(d, d + n, 1.0f / static_cast<float>(n));
      continue;
    }
    const vfloat vmx = vbroadcast(mx);
    float total = 0.0f;
    j = 0;
    if (n >= kLanes) {
      vfloat vt = vbroadcast(0.0f);
      for (; j + kLanes <= n; j += kLanes) {
        const vfloat e = vexp(vsub(vload(s + j), vmx));
        vstore(d + j, e);
        vt = vadd(vt, e);
      }
      total = vreduce_add(vt);
    }
    for (; j < n; ++j) {
      d[j] = std::exp(s[j] - mx);
      total += d[j];
    }
    const float inv = 1.0f / total;
    const vfloat vinv = vbroadcast(inv);
    j = 0;
    for (; j + kLanes <= n; j += kLanes) {
      vstore(d + j, vmul(vload(d + j), vinv));
    }
    for (; j < n; ++j) d[j] *= inv;
  }
}

inline void log_softmax_rows(const float* src, float* dst, std::size_t r0,
                             std::size_t r1, std::size_t n) {
  if (n == 0) return;
  const float ninf = -std::numeric_limits<float>::infinity();
  for (std::size_t i = r0; i < r1; ++i) {
    const float* s = src + i * n;
    float* d = dst + i * n;
    float mx = ninf;
    std::size_t j = 0;
    if (n >= kLanes) {
      vfloat vm = vload(s);
      for (j = kLanes; j + kLanes <= n; j += kLanes) {
        vm = vmax(vm, vload(s + j));
      }
      mx = vreduce_max(vm);
    }
    for (; j < n; ++j) mx = std::max(mx, s[j]);
    if (mx == ninf) {
      std::fill(d, d + n, -std::log(static_cast<float>(n)));
      continue;
    }
    const vfloat vmx = vbroadcast(mx);
    float total = 0.0f;
    j = 0;
    if (n >= kLanes) {
      vfloat vt = vbroadcast(0.0f);
      for (; j + kLanes <= n; j += kLanes) {
        vt = vadd(vt, vexp(vsub(vload(s + j), vmx)));
      }
      total = vreduce_add(vt);
    }
    for (; j < n; ++j) total += std::exp(s[j] - mx);
    const float log_total = std::log(total);
    const vfloat vlt = vbroadcast(log_total);
    j = 0;
    for (; j + kLanes <= n; j += kLanes) {
      vstore(d + j, vsub(vsub(vload(s + j), vmx), vlt));
    }
    for (; j < n; ++j) d[j] = (s[j] - mx) - log_total;
  }
}

// ---- table -----------------------------------------------------------------
// im2col/col2im are pure data movement and shared with the scalar target so
// every ISA is bitwise-identical on them by construction.

inline constexpr Kernels kTable = {
    REFFIL_KERN_ISA_NAME,
    &matmul_rows_nn,
    &matmul_rows_nt,
    &matmul_rows_tn,
    &add_span,
    &axpy_span,
    &scale_span,
    &softmax_rows,
    &log_softmax_rows,
    &detail::im2col,
    &detail::col2im,
    &q8_encode,
    &q8_decode,
    &q8_axpy,
};
