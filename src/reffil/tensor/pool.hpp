// Thread-local tensor scratch pool.
//
// Training allocates the same handful of intermediate shapes thousands of
// times per round (backward-pass gradients, im2col columns, softmax
// scratch). Scratch borrows a raw float buffer from a per-thread
// size-bucketed free list instead of hitting the allocator, wraps it in a
// non-owning Tensor view for the duration of the scope, and returns it on
// destruction (RAII).
//
// Ownership rules:
//  * A Scratch owns its buffer exclusively for its lifetime — the pool never
//    hands the same buffer to two live borrows, on any thread.
//  * Free lists are thread_local, so acquire/release take no locks and are
//    data-race free by construction. A Scratch that is moved to (or
//    destroyed on) another thread simply returns its buffer to *that*
//    thread's list — buffers may migrate, they are never shared.
//  * Buckets are power-of-two capacity classes; a released buffer lands in
//    the bucket of its floor(log2(capacity)), so every hit hands back a
//    buffer with capacity >= the request and reuse never reallocates.
//  * The wrapped Tensor is a borrowed view: moving it out of the Scratch
//    transfers the view, never the buffer, so the buffer is still released
//    exactly once by the Scratch and a moved-out view must not outlive it.
//
// Observability: the obs registry counters `tensor.pool.hit`,
// `tensor.pool.miss` and `tensor.pool.bytes` (bytes served from reuse)
// make the reuse rate visible in traces and the PR 2 metrics snapshot.
#pragma once

#include <cstddef>
#include <cstdint>

#include "reffil/tensor/tensor.hpp"

namespace reffil::tensor::pool {

/// RAII borrow: a Tensor of `shape` whose storage comes from the calling
/// thread's free list (or the allocator on a miss). `zero` == true gives the
/// usual zero-filled tensor; pass false when every element is about to be
/// overwritten — the contents are then unspecified (a miss returns the
/// allocation uninitialized, a hit returns whatever the previous borrow
/// left behind).
class Scratch {
 public:
  explicit Scratch(Shape shape, bool zero = true);
  ~Scratch();

  Scratch(Scratch&& other) noexcept;
  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;
  Scratch& operator=(Scratch&&) = delete;

  Tensor& operator*() { return tensor_; }
  const Tensor& operator*() const { return tensor_; }
  Tensor* operator->() { return &tensor_; }
  const Tensor* operator->() const { return &tensor_; }
  Tensor& tensor() { return tensor_; }
  const Tensor& tensor() const { return tensor_; }

 private:
  float* buffer_ = nullptr;       ///< null when moved-from or numel == 0
  std::size_t capacity_ = 0;      ///< floats the allocation can hold
  Tensor tensor_;                 ///< view over buffer_ (owning empty if n==0)
};

/// Per-thread pool statistics (this thread's free list only; the obs
/// counters aggregate across threads).
struct ThreadStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t retained_bytes = 0;  ///< bytes currently parked in free lists
};
ThreadStats thread_stats();

/// Drop every buffer parked in the calling thread's free lists (tests /
/// benchmarks that want a cold pool).
void clear_thread_cache();

}  // namespace reffil::tensor::pool
