// reffil_prof — offline hotspot analyzer for the op-level profiler's Chrome
// trace output (reffil_run --profile / REFFIL_PROFILE).
//
//   reffil_prof trace.json [--top N]
//
// Prints:
//   * top-N ops by self time (self = span duration minus directly nested
//     spans on the same thread), with total time, call count, bytes moved,
//     and the backward time attributed to each forward op via the shared
//     correlation id (bw: spans),
//   * per-thread utilization (fraction of the trace's wall span covered by
//     top-level spans on that thread),
//   * a per-task breakdown of the federated phases (fed.* spans).
//
// The input must be well-formed Chrome trace JSON — the same strict parser
// that fuzz-validates the writer is used here, so a malformed trace is a
// bug report, not a shrug.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "reffil/util/json.hpp"

namespace {

namespace json = reffil::util::json;

struct SpanEvent {
  std::string name;
  std::uint32_t tid = 0;
  double ts = 0.0;   // µs
  double dur = 0.0;  // µs
  double self = 0.0;
  std::uint64_t corr = 0;
  std::uint64_t bytes = 0;
  long task = -1;
  bool backward = false;  // name carries the bw: prefix
  bool top_level = true;
};

struct OpStat {
  double self_us = 0.0;
  double total_us = 0.0;
  double backward_us = 0.0;  // bw: time whose corr matches this op
  std::uint64_t calls = 0;
  std::uint64_t bytes = 0;
};

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s TRACE.json [--top N]\n", argv0);
  return 2;
}

/// Assign self time: within one thread, spans sorted by (ts asc, dur desc)
/// nest like a call tree; each parent's self excludes its direct children.
void compute_self_times(std::vector<SpanEvent*>& spans) {
  std::sort(spans.begin(), spans.end(), [](const SpanEvent* a, const SpanEvent* b) {
    if (a->ts != b->ts) return a->ts < b->ts;
    return a->dur > b->dur;
  });
  std::vector<SpanEvent*> stack;
  constexpr double kEps = 1e-6;  // µs; guards against rounding in %.3f output
  for (SpanEvent* s : spans) {
    while (!stack.empty() &&
           s->ts >= stack.back()->ts + stack.back()->dur - kEps) {
      stack.pop_back();
    }
    s->self = s->dur;
    if (!stack.empty()) {
      stack.back()->self -= s->dur;
      s->top_level = false;
    }
    stack.push_back(s);
  }
}

std::string human_us(double us) {
  char buf[64];
  if (us >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fs", us / 1e6);
  } else if (us >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", us);
  }
  return buf;
}

std::string human_bytes(double b) {
  char buf[64];
  if (b >= 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2fGiB", b / (1024.0 * 1024.0 * 1024.0));
  } else if (b >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2fMiB", b / (1024.0 * 1024.0));
  } else if (b >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1fKiB", b / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fB", b);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::size_t top_n = 15;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--top") {
      if (i + 1 >= argc) return usage(argv[0]);
      top_n = std::strtoull(argv[++i], nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "reffil_prof: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  json::Value root;
  try {
    root = json::parse(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "reffil_prof: %s is not valid JSON: %s\n",
                 path.c_str(), e.what());
    return 1;
  }

  const json::Value* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "reffil_prof: no traceEvents array in %s\n",
                 path.c_str());
    return 1;
  }

  std::vector<SpanEvent> spans;
  std::map<std::uint32_t, std::string> thread_names;
  std::uint64_t dropped = 0;
  for (const auto& ev : events->as_array()) {
    const std::string ph = ev.string_or("ph", "");
    const auto tid = static_cast<std::uint32_t>(ev.number_or("tid", 0));
    if (ph == "M") {
      if (ev.string_or("name", "") == "thread_name") {
        if (const json::Value* args = ev.find("args")) {
          thread_names[tid] = args->string_or("name", "");
        }
      }
      continue;
    }
    if (ph == "C") {
      if (ev.string_or("name", "") == "prof.dropped") {
        if (const json::Value* args = ev.find("args")) {
          dropped = static_cast<std::uint64_t>(args->number_or("value", 0));
        }
      }
      continue;
    }
    if (ph != "X") continue;
    SpanEvent s;
    s.name = ev.string_or("name", "?");
    s.tid = tid;
    s.ts = ev.number_or("ts", 0.0);
    s.dur = ev.number_or("dur", 0.0);
    if (const json::Value* args = ev.find("args")) {
      s.corr = static_cast<std::uint64_t>(args->number_or("corr", 0));
      s.bytes = static_cast<std::uint64_t>(args->number_or("bytes", 0));
      s.task = static_cast<long>(args->number_or("task", -1));
    }
    s.backward = s.name.rfind("bw:", 0) == 0;
    spans.push_back(std::move(s));
  }

  if (spans.empty()) {
    std::fprintf(stderr, "reffil_prof: %s contains no complete (ph=X) spans\n",
                 path.c_str());
    return 1;
  }

  // Self times per thread.
  std::map<std::uint32_t, std::vector<SpanEvent*>> by_tid;
  for (auto& s : spans) by_tid[s.tid].push_back(&s);
  for (auto& [tid, list] : by_tid) compute_self_times(list);

  // Forward correlation ids → op name, for backward attribution.
  std::map<std::uint64_t, std::string> corr_to_op;
  for (const auto& s : spans) {
    if (!s.backward && s.corr != 0) corr_to_op.emplace(s.corr, s.name);
  }

  std::map<std::string, OpStat> ops;
  double grand_self = 0.0;
  for (const auto& s : spans) {
    OpStat& st = ops[s.name];
    st.self_us += s.self;
    st.total_us += s.dur;
    st.calls += 1;
    st.bytes += s.bytes;
    grand_self += s.self;
    if (s.backward) {
      const auto it = corr_to_op.find(s.corr);
      if (it != corr_to_op.end()) ops[it->second].backward_us += s.dur;
    }
  }

  std::vector<std::pair<std::string, OpStat>> ranked(ops.begin(), ops.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second.self_us > b.second.self_us;
  });

  std::printf("== top ops by self time (%zu of %zu; %zu spans) ==\n",
              std::min(top_n, ranked.size()), ranked.size(), spans.size());
  std::printf("%-22s %10s %7s %10s %8s %10s %10s\n", "op", "self", "self%",
              "total", "calls", "bytes", "backward");
  for (std::size_t i = 0; i < ranked.size() && i < top_n; ++i) {
    const auto& [name, st] = ranked[i];
    std::printf("%-22s %10s %6.1f%% %10s %8llu %10s %10s\n", name.c_str(),
                human_us(st.self_us).c_str(),
                grand_self > 0.0 ? 100.0 * st.self_us / grand_self : 0.0,
                human_us(st.total_us).c_str(),
                static_cast<unsigned long long>(st.calls),
                human_bytes(static_cast<double>(st.bytes)).c_str(),
                st.backward_us > 0.0 ? human_us(st.backward_us).c_str() : "-");
  }

  // Wall window of the whole trace.
  double t_min = spans.front().ts, t_max = 0.0;
  for (const auto& s : spans) {
    t_min = std::min(t_min, s.ts);
    t_max = std::max(t_max, s.ts + s.dur);
  }
  const double wall = std::max(1e-9, t_max - t_min);

  std::printf("\n== per-thread utilization (wall %s) ==\n",
              human_us(wall).c_str());
  std::printf("%-6s %-16s %10s %8s %8s\n", "tid", "name", "busy", "util%",
              "spans");
  for (const auto& [tid, list] : by_tid) {
    double busy = 0.0;
    for (const SpanEvent* s : list) {
      if (s->top_level) busy += s->dur;
    }
    const auto name_it = thread_names.find(tid);
    std::printf("%-6u %-16s %10s %7.1f%% %8zu\n", tid,
                name_it != thread_names.end() ? name_it->second.c_str() : "-",
                human_us(busy).c_str(), 100.0 * busy / wall, list.size());
  }

  // Federated phase breakdown: fed.* spans grouped per task.
  std::map<long, std::map<std::string, double>> phases;
  for (const auto& s : spans) {
    if (s.task >= 0 && s.name.rfind("fed.", 0) == 0) {
      phases[s.task][s.name] += s.dur;
    }
  }
  if (!phases.empty()) {
    std::printf("\n== per-task phase breakdown ==\n");
    std::printf("%-6s %-18s %12s\n", "task", "phase", "total");
    for (const auto& [task, by_phase] : phases) {
      for (const auto& [phase, us] : by_phase) {
        std::printf("%-6ld %-18s %12s\n", task, phase.c_str(),
                    human_us(us).c_str());
      }
    }
  }

  if (dropped != 0) {
    std::printf("\nwarning: %llu spans were dropped (ring overflow) — "
                "raise REFFIL_PROFILE_RING for full coverage\n",
                static_cast<unsigned long long>(dropped));
  }
  return 0;
}
