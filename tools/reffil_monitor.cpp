// reffil_monitor — live single-screen view of a monitored run.
//
//   reffil_run --dataset PACS --method RefFiL --serve-metrics 9100 &
//   reffil_monitor --port 9100
//
// Polls the embedded exposition server's /progress endpoint (util/expo.hpp)
// and redraws one screen per poll: round/task progress, traffic with
// compression ratios, fault counters, round-latency quantiles, per-task
// accuracy, and the most recent health alerts. Exits when the run reports
// done (or immediately with --once).
//
// Options:
//   --port N        connect to 127.0.0.1:N (default 9100)
//   --host H        connect to H instead of 127.0.0.1
//   --interval S    poll every S seconds (default 1.0)
//   --once          print a single snapshot and exit
//   --no-clear      append screens instead of redrawing in place
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "reffil/util/json.hpp"

namespace {

using reffil::util::json::Value;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--host H] [--interval S] [--once] "
               "[--no-clear]\n",
               argv0);
  return 2;
}

/// Minimal blocking HTTP/1.1 GET against host:port; returns the response
/// body, or an empty string on any failure (connection refused, timeout,
/// non-200). Deliberately tiny — this talks to our own loopback server.
std::string http_get(const std::string& host, int port, const char* path,
                     int timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* list = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &list) != 0) {
    return {};
  }
  int fd = -1;
  for (addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(list);
  if (fd < 0) return {};

  const std::string request = std::string("GET ") + path +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return {};
  }
  std::string response;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) break;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, static_cast<int>(remaining.count())) <= 0) break;
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // 0 = server closed: response complete
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (response.compare(0, 9, "HTTP/1.1 ") != 0 ||
      response.compare(9, 3, "200") != 0) {
    return {};
  }
  const std::size_t body = response.find("\r\n\r\n");
  return body == std::string::npos ? std::string()
                                   : response.substr(body + 4);
}

std::string human_bytes(double b) {
  char buf[32];
  if (b >= 1073741824.0) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / 1073741824.0);
  } else if (b >= 1048576.0) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", b / 1048576.0);
  } else if (b >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", b / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", b);
  }
  return buf;
}

void render(const Value& p, bool clear) {
  if (clear) std::printf("\x1b[H\x1b[2J");  // home + clear screen

  const std::string method = p.string_or("method", "?");
  const std::string dataset = p.string_or("dataset", "?");
  const double rounds_done = p.number_or("rounds_done", 0);
  const double rounds_total = p.number_or("rounds_total", 0);
  const double task = p.number_or("task", 0);
  const double tasks_total = p.number_or("tasks_total", 0);
  const bool done = p.find("done") != nullptr && p.find("done")->is_bool() &&
                    p.find("done")->as_bool();
  const bool healthy = !(p.find("healthy") != nullptr &&
                         p.find("healthy")->is_bool() &&
                         !p.find("healthy")->as_bool());

  std::printf("%s on %s — %s\n", method.c_str(), dataset.c_str(),
              done ? "DONE" : "running");
  const int width = 40;
  const double frac =
      rounds_total > 0 ? rounds_done / rounds_total : (done ? 1.0 : 0.0);
  const int filled = static_cast<int>(frac * width + 0.5);
  std::printf("  round %4.0f/%-4.0f task %2.0f/%-2.0f [", rounds_done,
              rounds_total, task + 1, tasks_total);
  for (int i = 0; i < width; ++i) std::printf("%s", i < filled ? "#" : "-");
  std::printf("] %3.0f%%\n", frac * 100.0);

  const double bytes_up = p.number_or("bytes_up", 0);
  const double bytes_down = p.number_or("bytes_down", 0);
  const double up_raw = p.number_or("bytes_up_raw_equiv", 0);
  const double down_raw = p.number_or("bytes_down_raw_equiv", 0);
  std::printf("  traffic  down %s (%.1fx)  up %s (%.1fx)  messages %.0f\n",
              human_bytes(bytes_down).c_str(),
              bytes_down > 0 ? down_raw / bytes_down : 1.0,
              human_bytes(bytes_up).c_str(),
              bytes_up > 0 ? up_raw / bytes_up : 1.0,
              p.number_or("messages", 0));
  std::printf("  faults   dropped %.0f  quarantined %.0f  retries %.0f  "
              "timed_out %.0f\n",
              p.number_or("dropped", 0), p.number_or("quarantined", 0),
              p.number_or("retries", 0), p.number_or("timed_out", 0));
  std::printf("  latency  p50 %.3fs  p95 %.3fs  p99 %.3fs  participants %.0f\n",
              p.number_or("round_p50_s", 0), p.number_or("round_p95_s", 0),
              p.number_or("round_p99_s", 0), p.number_or("participants", 0));

  const Value* acc = p.find("task_accuracy");
  if (acc != nullptr && acc->is_array() && !acc->as_array().empty()) {
    std::printf("  accuracy ");
    for (const Value& a : acc->as_array()) {
      std::printf(" %5.1f%%", a.is_number() ? a.as_number() : 0.0);
    }
    std::printf("\n");
  }

  std::printf("  health   %s", healthy ? "ok" : "DEGRADED");
  const std::string reason = p.string_or("health_reason", "");
  if (!reason.empty()) std::printf(" — %s", reason.c_str());
  std::printf("\n");
  const Value* alerts = p.find("alerts");
  if (alerts != nullptr && alerts->is_array()) {
    for (const Value& a : alerts->as_array()) {
      std::printf("    [%s] r%.0f: %s\n",
                  a.string_or("detector", "?").c_str(),
                  a.number_or("global_round", 0),
                  a.string_or("detail", "").c_str());
    }
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 9100;
  double interval_s = 1.0;
  bool once = false;
  bool clear = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      port = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--host") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      host = v;
    } else if (arg == "--interval") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      interval_s = std::strtod(v, nullptr);
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--no-clear") {
      clear = false;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "bad port %d\n", port);
    return 2;
  }

  int misses = 0;
  for (;;) {
    const std::string body = http_get(host, port, "/progress", 2000);
    if (body.empty()) {
      if (once) {
        std::fprintf(stderr, "no response from %s:%d\n", host.c_str(), port);
        return 1;
      }
      // A run that just finished tears the server down between polls; a few
      // consecutive misses mean it is gone, not merely busy.
      if (++misses >= 3) {
        std::fprintf(stderr, "lost contact with %s:%d\n", host.c_str(), port);
        return 1;
      }
    } else {
      misses = 0;
      try {
        const Value progress = reffil::util::json::parse(body);
        render(progress, clear);
        if (once) return 0;
        if (progress.find("done") != nullptr &&
            progress.find("done")->is_bool() &&
            progress.find("done")->as_bool()) {
          return 0;
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "bad /progress payload: %s\n", e.what());
        if (once) return 1;
      }
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(interval_s > 0.05 ? interval_s : 0.05));
  }
}
