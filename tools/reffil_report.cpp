// reffil_report — renders the experiment cache as the markdown tables used
// in EXPERIMENTS.md (measured vs. paper, per table). Cells missing from the
// cache are reported as pending rather than recomputed, so this tool is
// always instant; run the bench binaries first to populate the cache.
//
//   REFFIL_CACHE_DIR=reffil_cache ./reffil_report > EXPERIMENTS_tables.md
#include <cstdio>
#include <exception>
#include <optional>

#include "reffil/harness/cache.hpp"
#include "reffil/harness/tables.hpp"
#include "reffil/util/obs.hpp"

namespace {

using namespace reffil;

std::optional<harness::CellResult> load_cell(const data::DatasetSpec& spec,
                                             const std::string& order_tag,
                                             const std::string& method_name) {
  harness::CellResult cell;
  for (std::uint64_t seed : harness::bench_seeds()) {
    const auto key =
        harness::cache_key(spec.name, order_tag, method_name, seed, "scaled");
    auto run = harness::cache_load(key);
    if (!run) return std::nullopt;
    cell.runs.push_back(std::move(*run));
  }
  return cell;
}

void summary_tables(bool new_order) {
  const char* order_tag = new_order ? "neworder" : "orig";
  std::printf("### Table %d — Avg / Last summary (%s domain order)\n\n",
              new_order ? 2 : 1, new_order ? "permuted" : "original");
  for (auto spec : data::all_dataset_specs()) {
    if (new_order) {
      spec = data::with_domain_order(spec, data::new_domain_order(spec.name));
    }
    std::printf("**%s**\n\n", spec.name.c_str());
    std::printf("| Method | measured Avg | measured Last | paper Avg | paper Last |\n");
    std::printf("|---|---|---|---|---|\n");
    for (const auto kind : harness::all_method_kinds()) {
      const auto name = harness::method_display_name(kind);
      const auto cell = load_cell(spec, order_tag, name);
      const auto paper = harness::paper_reference(spec.name, kind, new_order);
      if (cell) {
        std::printf("| %s | %.2f | %.2f | %.2f | %.2f |\n", name.c_str(),
                    cell->avg(), cell->last(), paper ? paper->avg : 0.0,
                    paper ? paper->last : 0.0);
      } else {
        std::printf("| %s | (pending) | (pending) | %.2f | %.2f |\n",
                    name.c_str(), paper ? paper->avg : 0.0,
                    paper ? paper->last : 0.0);
      }
    }
    std::printf("\n");
  }
}

void per_step_tables(bool new_order) {
  const char* order_tag = new_order ? "neworder" : "orig";
  std::printf("### Table %d — per-task-step accuracy (%s domain order)\n\n",
              new_order ? 4 : 3, new_order ? "permuted" : "original");
  for (auto spec : data::all_dataset_specs()) {
    if (new_order) {
      spec = data::with_domain_order(spec, data::new_domain_order(spec.name));
    }
    std::printf("**%s** (measured, paper in parentheses where available)\n\n",
                spec.name.c_str());
    std::printf("| Method |");
    for (const auto& d : spec.domains) std::printf(" %s |", d.name.c_str());
    std::printf("\n|---|");
    for (std::size_t i = 0; i < spec.domains.size(); ++i) std::printf("---|");
    std::printf("\n");
    for (const auto kind : harness::all_method_kinds()) {
      const auto name = harness::method_display_name(kind);
      const auto cell = load_cell(spec, order_tag, name);
      const auto paper = harness::paper_reference(spec.name, kind, new_order);
      std::printf("| %s |", name.c_str());
      if (!cell) {
        for (std::size_t t = 0; t < spec.domains.size(); ++t) {
          std::printf(" (pending) |");
        }
        std::printf("\n");
        continue;
      }
      const auto steps = cell->steps();
      for (std::size_t t = 0; t < steps.size(); ++t) {
        if (paper && t < paper->steps.size()) {
          std::printf(" %.1f (%.1f) |", steps[t], paper->steps[t]);
        } else {
          std::printf(" %.1f |", steps[t]);
        }
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
}

void comms_tables() {
  // Regenerated from the same cached runs as the accuracy tables: the
  // versioned cache entries carry per-round timing/traffic breakdowns, so a
  // traced bench population yields both views of each run (cf. the paper's
  // communication-cost comparison).
  std::printf("### Timing / communication summary (original domain order)\n\n");
  for (const auto& spec : data::all_dataset_specs()) {
    std::printf("**%s** (mean over seeds; MiB of metered payload bytes)\n\n",
                spec.name.c_str());
    std::printf("| Method | compress | down MiB | up MiB | up x | messages | "
                "dropped | wall s | "
                "train s | round p50/p95/p99 ms | aggregate s | eval s | "
                "alerts |\n");
    std::printf("|---|---|---|---|---|---|---|---|---|---|---|---|---|\n");
    for (const auto kind : harness::all_method_kinds()) {
      const auto name = harness::method_display_name(kind);
      const auto cell = load_cell(spec, "orig", name);
      if (!cell) {
        std::printf("| %s | (pending) | | | | | | | | | | | |\n",
                    name.c_str());
        continue;
      }
      const harness::CommsSummary c = cell->comms();
      // Per-round train-time quantiles over every cached seed, through the
      // same log2-bucket estimator the live metrics registry exports.
      obs::Histogram round_hist;
      for (const auto& run : cell->runs) {
        for (const auto& r : run.rounds) round_hist.observe(r.train_seconds);
      }
      const auto hs = round_hist.snapshot();
      // Uplink compression ratio: raw f32-equivalent over metered wire bytes
      // (1.00 for uncompressed cells, where the two counters coincide).
      const double up_ratio = c.bytes_up > 0 ? c.bytes_up_raw / c.bytes_up : 1.0;
      // Health-alert roll-up over the cached seeds: "-" when no seed was
      // monitored, "ok" for monitored-and-clean, else the firing count with
      // detector names and the round of the first firing per detector.
      bool monitored = false;
      std::size_t alert_count = 0;
      std::string alert_note;
      for (const auto& run : cell->runs) {
        monitored = monitored || run.monitor.enabled;
        alert_count += run.health.size();
        for (const auto& event : run.health) {
          const std::string tag =
              event.detector + "@r" + std::to_string(event.global_round);
          if (alert_note.find(event.detector) == std::string::npos) {
            alert_note += (alert_note.empty() ? "" : ", ") + tag;
          }
        }
      }
      const std::string alerts =
          !monitored ? "-"
          : alert_count == 0
              ? "ok"
              : std::to_string(alert_count) + " (" + alert_note + ")";
      std::printf("| %s | %s | %.2f | %.2f | %.2f | %.0f | %.0f | %.2f | "
                  "%.2f | %.1f / %.1f / %.1f | %.2f | %.2f | %s |\n",
                  name.c_str(), c.compression.c_str(),
                  c.bytes_down / 1048576.0, c.bytes_up / 1048576.0, up_ratio,
                  c.messages, c.dropped_updates, c.wall_seconds,
                  c.train_seconds, hs.quantile(0.50) * 1e3,
                  hs.quantile(0.95) * 1e3, hs.quantile(0.99) * 1e3,
                  c.aggregate_seconds, c.eval_seconds, alerts.c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  try {
    std::printf("<!-- generated by tools/reffil_report from the experiment "
                "cache -->\n\n");
    summary_tables(false);
    summary_tables(true);
    per_step_tables(false);
    per_step_tables(true);
    comms_tables();
  } catch (const std::exception& e) {
    obs::flush_all();
    std::fprintf(stderr, "reffil_report: %s\n", e.what());
    return 1;
  }
  return 0;
}
