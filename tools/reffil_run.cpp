// reffil_run — command-line driver for single experiments.
//
//   reffil_run --dataset PACS --method RefFiL --seed 7
//   reffil_run --dataset Digits-Five --method Finetune --order new --json
//   reffil_run --list
//
// Options:
//   --dataset NAME    Digits-Five | OfficeCaltech10 | PACS | FedDomainNet
//   --method NAME     Finetune | FedLwF | FedEWC | FedL2P | FedL2P+pool |
//                     FedDualPrompt | FedDualPrompt+pool | RefFiL
//   --order orig|new  domain order (default orig)
//   --seed N          experiment seed (default 7)
//   --scale S         smoke | scaled | full (default scaled)
//   --dropout P       client dropout probability (default 0)
//   --fault-profile S transport fault spec, comma-separated key=value pairs
//                     (corrupt=P,poison=P,dup=P,latency=S,jitter=S,deadline=S,
//                     retries=N,backoff=S) — see fed/transport.hpp
//   --des SPEC        discrete-event federation, comma-separated key=value
//                     pairs (registered=N,sample=N,offline=P,diurnal=S,
//                     churn=R,rejoin=S,straggler=P,straggler_latency=S,
//                     compute=S,jitter=S,interval=S,shards=N) — see
//                     fed/scheduler.hpp. E.g. a million-client federation
//                     sampling 10k participants per round:
//                       --des registered=1000000,sample=10000
//   --compress SPEC   wire compression: none | f16 | q8, optionally with
//                     ,topk=F (fraction of delta entries uploaded, (0,1]) —
//                     see fed/compress.hpp. E.g. quantized broadcast plus
//                     top-10% sparsified q8 deltas:
//                       --compress q8,topk=0.1
//   --graph-replay    capture each distinct client training graph once and
//                     replay it through the arena planner on later batches
//                     (bitwise-identical results, zero steady-state
//                     allocations; see autograd/graph.hpp). The --json
//                     output gains a "graph" block with capture/replay
//                     counts and arena_bytes.
//   --profile PATH    write an op-level Chrome trace (chrome://tracing) here
//   --serve-metrics P serve live /metrics, /healthz and /progress over HTTP
//                     on 127.0.0.1:P while the run executes (0 = ephemeral
//                     port, printed to stderr). Implies --monitor. The
//                     REFFIL_METRICS_PORT env var is the flag's equivalent;
//                     REFFIL_METRICS_LINGER=SECONDS keeps the server up that
//                     long after the run so a scraper can read the final
//                     state (GET /quitquitquit ends the linger early).
//   --monitor SPEC    arm live telemetry without the HTTP server; SPEC is a
//                     comma-separated key=value list (capacity=N,interval=S,
//                     norm_z=Z,norm_window=N,quarantine_rate=P,latency_slo=S,
//                     slo_burn=P,slo_window=N,accuracy_drop=PTS,
//                     recovery_rounds=N) — see fed/health.hpp. Empty SPEC ("")
//                     uses the defaults.
//   --json            machine-readable output (includes a "health" block for
//                     monitored runs)
//   --list            print datasets and methods, then exit
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <thread>

#include "reffil/data/spec.hpp"
#include "reffil/fed/health.hpp"
#include "reffil/harness/experiment.hpp"
#include "reffil/tensor/kernels_dispatch.hpp"
#include "reffil/util/expo.hpp"
#include "reffil/util/obs.hpp"
#include "reffil/util/prof.hpp"

namespace {

using namespace reffil;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --dataset NAME --method NAME [--order orig|new] "
               "[--seed N] [--scale smoke|scaled|full] [--dropout P] "
               "[--fault-profile SPEC] [--des SPEC] [--compress SPEC] "
               "[--graph-replay] [--profile PATH] [--serve-metrics PORT] "
               "[--monitor SPEC] [--json]\n"
               "       %s --list\n",
               argv0, argv0);
  return 2;
}

std::optional<harness::MethodKind> parse_method(const std::string& name) {
  using K = harness::MethodKind;
  if (name == "Finetune") return K::kFinetune;
  if (name == "FedLwF") return K::kLwf;
  if (name == "FedEWC") return K::kEwc;
  if (name == "FedL2P") return K::kL2p;
  if (name == "FedL2P+pool") return K::kL2pPool;
  if (name == "FedDualPrompt") return K::kDualPrompt;
  if (name == "FedDualPrompt+pool") return K::kDualPromptPool;
  if (name == "RefFiL") return K::kRefFiL;
  return std::nullopt;
}

// Sum of per-round selected participants — under --des this counts sampled
// cohort members (the nonzero-participation signal the CI smoke asserts on);
// dense runs count clients_per_round per round.
std::uint64_t total_participants(const fed::RunResult& result) {
  std::uint64_t total = 0;
  for (const auto& round : result.rounds) total += round.selected;
  return total;
}

void print_json(const fed::RunResult& result) {
  std::printf("{\"method\":\"%s\",\"dataset\":\"%s\",\"isa\":\"%s\","
              "\"avg\":%.4f,\"last\":%.4f,\"tasks\":[",
              result.method_name.c_str(), result.dataset_name.c_str(),
              tensor::kern::active_name(), result.average_accuracy(),
              result.last_accuracy());
  for (std::size_t t = 0; t < result.tasks.size(); ++t) {
    const auto& task = result.tasks[t];
    std::printf("%s{\"domain\":\"%s\",\"cumulative\":%.4f,\"per_domain\":[",
                t == 0 ? "" : ",", task.domain_name.c_str(),
                task.cumulative_accuracy);
    for (std::size_t d = 0; d < task.per_domain_accuracy.size(); ++d) {
      std::printf("%s%.4f", d == 0 ? "" : ",", task.per_domain_accuracy[d]);
    }
    std::printf("]}");
  }
  // Compression ratios: raw-equivalent over wire bytes (1 when the run is
  // uncompressed, so the fields are always present and always comparable).
  const double down_ratio =
      result.network.bytes_down > 0
          ? static_cast<double>(result.network.bytes_down_raw_equiv) /
                static_cast<double>(result.network.bytes_down)
          : 1.0;
  const double up_ratio =
      result.network.bytes_up > 0
          ? static_cast<double>(result.network.bytes_up_raw_equiv) /
                static_cast<double>(result.network.bytes_up)
          : 1.0;
  std::printf("],\"participants\":%llu,"
              "\"bytes_down\":%llu,\"bytes_up\":%llu,\"messages\":%llu,"
              "\"dropped\":%llu,\"quarantined\":%llu,\"retries\":%llu,"
              "\"timed_out\":%llu,\"bytes_retransmitted\":%llu,"
              "\"compression\":\"%s\","
              "\"bytes_down_raw_equiv\":%llu,\"bytes_up_raw_equiv\":%llu,"
              "\"compression_ratio_down\":%.4f,\"compression_ratio_up\":%.4f,"
              "\"wall_seconds\":%.3f,\"train_seconds\":%.3f,"
              "\"aggregate_seconds\":%.3f,\"eval_seconds\":%.3f",
              static_cast<unsigned long long>(total_participants(result)),
              static_cast<unsigned long long>(result.network.bytes_down),
              static_cast<unsigned long long>(result.network.bytes_up),
              static_cast<unsigned long long>(result.network.messages),
              static_cast<unsigned long long>(result.network.dropped_updates),
              static_cast<unsigned long long>(result.network.quarantined),
              static_cast<unsigned long long>(result.network.retries),
              static_cast<unsigned long long>(result.network.timed_out),
              static_cast<unsigned long long>(
                  result.network.bytes_retransmitted),
              result.compression.c_str(),
              static_cast<unsigned long long>(
                  result.network.bytes_down_raw_equiv),
              static_cast<unsigned long long>(
                  result.network.bytes_up_raw_equiv),
              down_ratio, up_ratio, result.wall_seconds,
              result.train_seconds(), result.aggregate_seconds(),
              result.eval_seconds());

  // Bucket-estimated quantiles for the phase histograms the runner feeds
  // (satellite: Registry::Snapshot now carries the buckets).
  const auto snap = obs::Registry::instance().snapshot();
  std::printf(",\"quantiles\":{");
  bool first = true;
  for (const char* name : {"fed.round_train_seconds", "fed.aggregate_seconds",
                           "fed.eval_seconds", "pool.task_wait_seconds"}) {
    const auto it = snap.histograms.find(name);
    if (it == snap.histograms.end() || it->second.stats.count == 0) continue;
    std::printf("%s\"%s\":{\"p50\":%.6f,\"p95\":%.6f,\"p99\":%.6f}",
                first ? "" : ",", name, it->second.quantile(0.50),
                it->second.quantile(0.95), it->second.quantile(0.99));
    first = false;
  }
  std::printf("}");

  // Graph-replay accounting (all zero for eager runs, so the block is
  // always present). arena_bytes is the largest planned arena this process
  // captured — deterministic for a fixed (method, dataset, scale, seed).
  const auto counter_of = [&](const char* name) -> unsigned long long {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0ULL
                                     : static_cast<unsigned long long>(
                                           it->second);
  };
  const auto gauge_it = snap.gauges.find("ag.graph.arena_bytes");
  const unsigned long long arena_bytes =
      gauge_it == snap.gauges.end()
          ? 0ULL
          : static_cast<unsigned long long>(gauge_it->second);
  std::printf(",\"graph\":{\"captures\":%llu,\"capture_rejects\":%llu,"
              "\"replays\":%llu,\"fallbacks\":%llu,\"arena_bytes\":%llu,"
              "\"pool_misses\":%llu}",
              counter_of("ag.graph.capture"),
              counter_of("ag.graph.capture_reject"),
              counter_of("ag.graph.replay"), counter_of("ag.graph.fallback"),
              arena_bytes, counter_of("tensor.pool.miss"));

  // Health block: detector firings with round coordinates. Present for every
  // run (monitored=false for plain ones) so consumers never branch on key
  // existence.
  std::string health = ",\"health\":{\"monitored\":";
  health += result.monitor.enabled ? "true" : "false";
  health += ",\"healthy\":";
  health += result.monitor.healthy_at_end ? "true" : "false";
  health += ",\"alerts\":" + std::to_string(result.health.size());
  health += ",\"samples_taken\":" +
            std::to_string(result.monitor.samples_taken);
  health += ",\"samples_retained\":" +
            std::to_string(result.monitor.samples_retained);
  health += ",\"events\":[";
  for (std::size_t i = 0; i < result.health.size(); ++i) {
    const auto& e = result.health[i];
    if (i != 0) health += ',';
    health += "{\"detector\":\"";
    obs::json_escape(health, e.detector);
    health += "\",\"task\":" + std::to_string(e.task);
    health += ",\"round\":" + std::to_string(e.round);
    health += ",\"global_round\":" + std::to_string(e.global_round);
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",\"value\":%.6g,\"threshold\":%.6g",
                  e.value, e.threshold);
    health += buf;
    health += ",\"detail\":\"";
    obs::json_escape(health, e.detail);
    health += "\"}";
  }
  health += "]}";
  std::printf("%s}\n", health.c_str());
}

/// The /metrics extras a monitored run exposes beyond the process registry:
/// run-scoped series fed from the progress board at round cadence, whose
/// final values reconcile exactly with RunResult::network (the CI
/// monitored-smoke asserts this byte-for-byte).
std::vector<obs::expo::ExtraMetric> run_extras(const fed::ProgressSnapshot& p) {
  std::vector<obs::expo::ExtraMetric> extras;
  const auto counter = [&](const char* name, const char* help,
                           std::uint64_t v) {
    extras.push_back({std::string("reffil_run_") + name, help, "counter", {},
                      static_cast<double>(v)});
  };
  const auto gauge = [&](const char* name, const char* help, double v) {
    extras.push_back(
        {std::string("reffil_run_") + name, help, "gauge", {}, v});
  };
  extras.push_back({"reffil_run_info",
                    "run identity",
                    "gauge",
                    {{"method", p.method}, {"dataset", p.dataset}},
                    1.0});
  counter("rounds", "committed rounds this run", p.rounds_done);
  counter("participants", "cumulative selected participants", p.participants);
  counter("bytes_down", "server->client wire bytes", p.bytes_down);
  counter("bytes_up", "client->server wire bytes", p.bytes_up);
  counter("bytes_down_raw_equiv", "uncompressed-equivalent downlink bytes",
          p.bytes_down_raw_equiv);
  counter("bytes_up_raw_equiv", "uncompressed-equivalent uplink bytes",
          p.bytes_up_raw_equiv);
  counter("messages", "logical messages", p.messages);
  counter("dropped", "client dropouts", p.dropped);
  counter("quarantined", "quarantined updates", p.quarantined);
  counter("retries", "retransmissions", p.retries);
  counter("timed_out", "deadline-cut deliveries", p.timed_out);
  counter("alerts", "health detector firings", p.alerts.size());
  gauge("task", "current task index", static_cast<double>(p.task));
  gauge("round_p95_seconds", "p95 round train+aggregate seconds",
        p.round_p95_s);
  gauge("healthy", "1 while /healthz is ok", p.healthy ? 1.0 : 0.0);
  gauge("done", "1 once the run finished", p.done ? 1.0 : 0.0);
  return extras;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset_name, method_name, order = "orig", scale = "scaled";
  std::string profile_path, fault_spec, des_spec, compress_spec, monitor_spec;
  std::uint64_t seed = 7;
  double dropout = 0.0;
  bool json = false;
  bool graph_replay = false;
  bool monitor_armed = false;
  bool serve_metrics = false;
  long metrics_port = 0;
  if (const char* env_port = std::getenv("REFFIL_METRICS_PORT")) {
    serve_metrics = true;
    monitor_armed = true;
    metrics_port = std::strtol(env_port, nullptr, 10);
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--list") {
      std::printf("datasets:\n");
      for (const auto& spec : data::all_dataset_specs()) {
        std::printf("  %-16s %zu classes, %zu domains\n", spec.name.c_str(),
                    spec.num_classes, spec.domains.size());
      }
      std::printf("methods:\n");
      for (const auto kind : harness::all_method_kinds()) {
        std::printf("  %s\n", harness::method_display_name(kind).c_str());
      }
      return 0;
    } else if (arg == "--dataset") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      dataset_name = v;
    } else if (arg == "--method") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      method_name = v;
    } else if (arg == "--order") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      order = v;
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--scale") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      scale = v;
    } else if (arg == "--dropout") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      dropout = std::strtod(v, nullptr);
    } else if (arg == "--fault-profile") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      fault_spec = v;
    } else if (arg == "--des") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      des_spec = v;
    } else if (arg == "--compress") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      compress_spec = v;
    } else if (arg == "--profile") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      profile_path = v;
    } else if (arg == "--serve-metrics") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      serve_metrics = true;
      monitor_armed = true;
      metrics_port = std::strtol(v, nullptr, 10);
    } else if (arg == "--monitor") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      monitor_armed = true;
      monitor_spec = v;
    } else if (arg == "--graph-replay") {
      graph_replay = true;
    } else if (arg == "--json") {
      json = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (dataset_name.empty() || method_name.empty()) return usage(argv[0]);

  data::DatasetSpec spec;
  bool found = false;
  for (const auto& candidate : data::all_dataset_specs()) {
    if (candidate.name != dataset_name) continue;
    if (found) {
      // The lookup used to keep scanning, so a duplicated registry name
      // silently resolved to whichever spec happened to be listed last.
      std::fprintf(stderr,
                   "dataset '%s' appears more than once in the spec registry; "
                   "refusing to guess which one you meant\n",
                   dataset_name.c_str());
      return 2;
    }
    spec = candidate;
    found = true;
  }
  if (!found) {
    std::fprintf(stderr, "unknown dataset '%s' (see --list)\n",
                 dataset_name.c_str());
    return 2;
  }
  if (order == "new") {
    spec = data::with_domain_order(spec, data::new_domain_order(spec.name));
  } else if (order != "orig") {
    std::fprintf(stderr, "unknown order '%s'\n", order.c_str());
    return 2;
  }
  const auto kind = parse_method(method_name);
  if (!kind) {
    std::fprintf(stderr, "unknown method '%s' (see --list)\n",
                 method_name.c_str());
    return 2;
  }

  harness::ExperimentConfig config;
  config.seed = seed;
  config.scale = scale == "smoke"   ? harness::Scale::kSmoke
                 : scale == "full"  ? harness::Scale::kFull
                                    : harness::Scale::kScaled;
  config.graph_replay = graph_replay;

  if (!profile_path.empty()) {
    obs::prof::set_thread_name("main");
    obs::prof::start(profile_path);
  }

  fed::FaultProfile faults;
  if (!fault_spec.empty()) {
    try {
      faults = fed::FaultProfile::parse(fault_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad --fault-profile: %s\n", e.what());
      return 2;
    }
  }
  fed::DesConfig des;
  if (!des_spec.empty()) {
    try {
      des = fed::DesConfig::parse(des_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad --des: %s\n", e.what());
      return 2;
    }
  }
  fed::CompressionConfig compress;
  if (!compress_spec.empty()) {
    try {
      compress = fed::CompressionConfig::parse(compress_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad --compress: %s\n", e.what());
      return 2;
    }
  }

  std::shared_ptr<fed::RunMonitor> monitor;
  if (monitor_armed) {
    fed::MonitorConfig monitor_config;
    try {
      monitor_config = fed::MonitorConfig::parse(monitor_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad --monitor: %s\n", e.what());
      return 2;
    }
    monitor = std::make_shared<fed::RunMonitor>(monitor_config);
  }
  std::unique_ptr<obs::expo::MetricsServer> server;
  if (serve_metrics) {
    if (metrics_port < 0 || metrics_port > 65535) {
      std::fprintf(stderr, "bad --serve-metrics port %ld\n", metrics_port);
      return 2;
    }
    obs::expo::MetricsServer::Options options;
    options.port = static_cast<std::uint16_t>(metrics_port);
    server = std::make_unique<obs::expo::MetricsServer>(
        options,
        [monitor] {
          return obs::expo::render_openmetrics(
              obs::Registry::instance().snapshot(),
              run_extras(monitor->board().get()));
        },
        [monitor] { return monitor->board().get().render_json(); },
        [monitor] {
          return std::make_pair(monitor->health().healthy(),
                                monitor->health().reason());
        });
    try {
      server->start();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "reffil_run: %s\n", e.what());
      return 1;
    }
    std::fprintf(stderr,
                 "serving /metrics /healthz /progress on 127.0.0.1:%u\n",
                 server->port());
  }

  const auto scaled_spec = harness::apply_scale(spec, config.scale);
  auto method = harness::make_method(*kind, scaled_spec, config);
  fed::RunConfig run_config{.spec = scaled_spec,
                            .parallelism = config.parallelism,
                            .seed = config.seed,
                            .dropout_probability = dropout,
                            .faults = faults,
                            .des = des,
                            .compress = compress,
                            .monitor = monitor};
  fed::FederatedRunner runner(run_config);
  fed::RunResult result;
  try {
    result = runner.run(*method);
  } catch (const std::exception& e) {
    // Partial traces are still evidence — flush every sink before dying.
    obs::flush_all();
    std::fprintf(stderr, "reffil_run: %s\n", e.what());
    return 1;
  }

  if (!profile_path.empty()) {
    obs::prof::stop_and_write();
    std::fprintf(stderr, "profile written to %s (load in chrome://tracing)\n",
                 profile_path.c_str());
  }

  if (json) {
    print_json(result);
  } else {
    std::printf("%s on %s (seed %llu, %s order, scale %s, isa %s)\n",
                result.method_name.c_str(), result.dataset_name.c_str(),
                static_cast<unsigned long long>(seed), order.c_str(),
                scale.c_str(), tensor::kern::active_name());
    for (const auto& task : result.tasks) {
      std::printf("  after %-14s cumulative %5.1f%%\n", task.domain_name.c_str(),
                  task.cumulative_accuracy);
    }
    std::string dropped_note;
    if (result.network.dropped_updates != 0) {
      dropped_note = "  (" + std::to_string(result.network.dropped_updates) +
                     " dropped updates)";
    }
    if (result.network.quarantined != 0 || result.network.retries != 0 ||
        result.network.timed_out != 0) {
      dropped_note += "  [faults: " +
                      std::to_string(result.network.quarantined) +
                      " quarantined, " +
                      std::to_string(result.network.retries) + " retries, " +
                      std::to_string(result.network.timed_out) + " timed out]";
    }
    if (!des_spec.empty()) {
      std::printf("  %llu participants sampled across %zu rounds\n",
                  static_cast<unsigned long long>(total_participants(result)),
                  result.rounds.size());
    }
    std::string compress_note;
    if (result.compression != "none") {
      const double down_ratio =
          result.network.bytes_down > 0
              ? static_cast<double>(result.network.bytes_down_raw_equiv) /
                    static_cast<double>(result.network.bytes_down)
              : 1.0;
      const double up_ratio =
          result.network.bytes_up > 0
              ? static_cast<double>(result.network.bytes_up_raw_equiv) /
                    static_cast<double>(result.network.bytes_up)
              : 1.0;
      char buf[128];
      std::snprintf(buf, sizeof(buf), "  [%s: %.1fx down, %.1fx up]",
                    result.compression.c_str(), down_ratio, up_ratio);
      compress_note = buf;
    }
    std::printf("Avg %.2f%%  Last %.2f%%  traffic %.1f MiB down / %.1f MiB up"
                "%s%s  wall %.1fs (train %.1fs, aggregate %.1fs, eval %.1fs)\n",
                result.average_accuracy(), result.last_accuracy(),
                result.network.bytes_down / 1048576.0,
                result.network.bytes_up / 1048576.0, compress_note.c_str(),
                dropped_note.c_str(), result.wall_seconds,
                result.train_seconds(), result.aggregate_seconds(),
                result.eval_seconds());
  }

  if (server != nullptr) {
    // Keep serving the final state so a scraper can reconcile the live
    // counters against the --json output above; /quitquitquit ends the
    // linger early, and no env var means no linger at all.
    double linger_s = 0.0;
    if (const char* env = std::getenv("REFFIL_METRICS_LINGER")) {
      linger_s = std::strtod(env, nullptr);
    }
    if (linger_s > 0.0) {
      std::fflush(stdout);
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(linger_s));
      while (std::chrono::steady_clock::now() < deadline &&
             !server->shutdown_requested()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
    server->stop();
  }
  return 0;
}
